package campaign_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/defense"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
)

// testRegistry returns a minimal self-contained registry: one tiny
// synthetic image dataset, two rules, three attacks and a round-counting
// probe — enough to exercise every engine path in well under a second per
// cell.
func testRegistry() *campaign.Registry {
	reg := campaign.NewRegistry()
	reg.RegisterDataset("tiny", campaign.DatasetBuilder{
		LR: 0.1,
		Load: func(seed int64, train, test int) (*data.Dataset, error) {
			return data.GenerateSynthImage(data.SynthImageConfig{
				Name: "tiny", Classes: 4, C: 1, H: 4, W: 4, Train: train, Test: test,
				Margin: 4, NoiseStd: 0.4, SmoothPass: 1, Seed: seed,
			})
		},
		NewModel: func(rng *rand.Rand) (nn.Classifier, error) {
			return nn.NewMLP(rng, 16, 12, 4)
		},
	})
	defs := defense.NewRegistry()
	if err := defs.Register(defense.Spec{Name: "Mean", Build: func(defense.Params) (aggregate.Rule, error) {
		return aggregate.NewMean(), nil
	}}); err != nil {
		panic(err)
	}
	if err := defs.Register(defense.Spec{Name: "TrMean", Build: func(p defense.Params) (aggregate.Rule, error) {
		return aggregate.NewTrimmedMean(p.F), nil
	}}); err != nil {
		panic(err)
	}
	if err := defs.Register(defense.Spec{Name: "SignGuard", Hyper: []string{"coord_fraction"}, Build: func(p defense.Params) (aggregate.Rule, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = p.Seed
		if v, ok := p.Hyper["coord_fraction"]; ok {
			cfg.CoordFraction = v
		}
		return core.New(cfg)
	}}); err != nil {
		panic(err)
	}
	reg.RegisterDefenses(defs)
	reg.RegisterCodecs(codec.Builtin())
	reg.RegisterAttack("NoAttack", func(_ campaign.Cell, _ int64) (attack.Attack, error) {
		return attack.NewNone(), nil
	})
	reg.RegisterAttack("SignFlip", func(_ campaign.Cell, _ int64) (attack.Attack, error) {
		return attack.NewSignFlip(), nil
	})
	reg.RegisterAttack("LIE", func(_ campaign.Cell, _ int64) (attack.Attack, error) {
		return attack.NewLIE(0.3), nil
	})
	reg.RegisterProbe("rounds", func(c campaign.Cell) (*campaign.ProbeInstance, error) {
		var rounds int
		return &campaign.ProbeInstance{
			Hook:   func(*fl.RoundState) { rounds++ },
			Finish: func() (json.RawMessage, error) { return json.Marshal(rounds) },
		}, nil
	})
	return reg
}

func tinyParams(seed int64) campaign.Params {
	return campaign.Params{
		Clients: 8, ByzFraction: 0.25, Rounds: 6, BatchSize: 4,
		EvalEvery: 3, EvalSamples: 40, TrainSize: 160, TestSize: 60, Seed: seed,
	}
}

// testSpec is a 2 rules × 2 attacks × 2 seeds grid (8 unique cells).
func testSpec() campaign.Spec {
	spec := campaign.Spec{Name: "test"}
	for _, seed := range []int64{1, 2} {
		for _, rule := range []string{"Mean", "SignGuard"} {
			for _, att := range []string{"SignFlip", "LIE"} {
				spec.Cells = append(spec.Cells, campaign.NewCell("tiny", rule, att, tinyParams(seed)))
			}
		}
	}
	return spec
}

func mustRun(t *testing.T, e *campaign.Engine, spec campaign.Spec) *campaign.Report {
	t.Helper()
	rep, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(spec.Cells) {
		t.Fatalf("%d results for %d cells", len(rep.Results), len(spec.Cells))
	}
	for i, r := range rep.Results {
		if r == nil {
			t.Fatalf("nil result at index %d", i)
		}
	}
	return rep
}

func resultHashes(t *testing.T, rep *campaign.Report) []string {
	t.Helper()
	out := make([]string, len(rep.Results))
	for i, r := range rep.Results {
		h, err := r.Hash()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	return out
}

// TestWorkerCountInvariance is acceptance criterion (a): a campaign run
// with workers=1 and workers=N produces identical per-cell results for the
// same spec.
func TestWorkerCountInvariance(t *testing.T) {
	spec := testSpec()
	seq := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: 1}, spec)
	seqHashes := resultHashes(t, seq)
	for _, workers := range []int{4, 0} {
		par := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: workers}, spec)
		for i, h := range resultHashes(t, par) {
			if h != seqHashes[i] {
				t.Errorf("workers=%d: cell %d (%s) result hash %s != sequential %s",
					workers, i, spec.Cells[i].ID(), h, seqHashes[i])
			}
		}
	}
	if seq.Executed != len(spec.Cells) || seq.CacheHits != 0 {
		t.Errorf("cache-less run: executed=%d hits=%d", seq.Executed, seq.CacheHits)
	}
}

// TestResumeWithWarmCache is acceptance criterion (b): re-running a
// completed campaign performs zero recomputation — every cell is a cache
// hit — and returns identical results.
func TestResumeWithWarmCache(t *testing.T) {
	spec := testSpec()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 4}, spec)
	if cold.Executed != len(spec.Cells) || cold.CacheHits != 0 {
		t.Fatalf("cold run: executed=%d hits=%d, want %d/0", cold.Executed, cold.CacheHits, len(spec.Cells))
	}

	warm := mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 4}, spec)
	if warm.Executed != 0 || warm.CacheHits != len(spec.Cells) {
		t.Fatalf("warm run: executed=%d hits=%d, want 0/%d", warm.Executed, warm.CacheHits, len(spec.Cells))
	}
	coldHashes, warmHashes := resultHashes(t, cold), resultHashes(t, warm)
	for i := range coldHashes {
		if coldHashes[i] != warmHashes[i] {
			t.Errorf("cell %d: cached result hash differs", i)
		}
		if !warm.Results[i].Cached {
			t.Errorf("cell %d: not marked cached", i)
		}
	}
}

// TestInterruptedResume simulates an interrupted campaign: a store with a
// strict subset of results only recomputes the missing cells.
func TestInterruptedResume(t *testing.T) {
	spec := testSpec()
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 2}, spec)

	// Evict two cells, as if the campaign had been killed mid-flight.
	for _, i := range []int{1, 5} {
		key, err := spec.Cells[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Delete(key); err != nil {
			t.Fatal(err)
		}
	}
	resumed := mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 2}, spec)
	if resumed.Executed != 2 || resumed.CacheHits != len(spec.Cells)-2 {
		t.Fatalf("resume: executed=%d hits=%d, want 2/%d", resumed.Executed, resumed.CacheHits, len(spec.Cells)-2)
	}
}

// TestDeduplication: a spec repeating the same cell trains it once and
// fans the shared result out to every position.
func TestDeduplication(t *testing.T) {
	c := campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1))
	spec := campaign.Spec{Name: "dup", Cells: []campaign.Cell{c, c, c}}
	rep := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: 2}, spec)
	if rep.Executed != 1 {
		t.Errorf("executed %d cells, want 1", rep.Executed)
	}
	if rep.Results[0] != rep.Results[1] || rep.Results[1] != rep.Results[2] {
		t.Error("duplicate cells should share one result")
	}
}

func TestCellKeyStability(t *testing.T) {
	a := campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1))
	b := campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1))
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("equal cells hash differently: %s vs %s", ka, kb)
	}
	for name, mutate := range map[string]func(*campaign.Cell){
		"rule":        func(c *campaign.Cell) { c.Rule = "SignGuard" },
		"attack":      func(c *campaign.Cell) { c.Attack = "LIE" },
		"attackParam": func(c *campaign.Cell) { c.AttackParam = 2 },
		"numByz":      func(c *campaign.Cell) { c.NumByz = 0 },
		"nonIID":      func(c *campaign.Cell) { c.NonIIDS = 0.3 },
		"probe":       func(c *campaign.Cell) { c.Probe = "rounds" },
		"seed":        func(c *campaign.Cell) { c.Params.Seed = 9 },
		"rounds":      func(c *campaign.Cell) { c.Params.Rounds = 7 },
	} {
		mut := a
		mutate(&mut)
		km, err := mut.Key()
		if err != nil {
			t.Fatal(err)
		}
		if km == ka {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
}

// TestCorruptStoreEntryRecomputes: an unreadable cache file is a miss, not
// an error — the engine recomputes and heals the entry.
func TestCorruptStoreEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1))
	spec := campaign.Spec{Name: "corrupt", Cells: []campaign.Cell{c}}
	mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 1}, spec)

	key, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 1}, spec)
	if rep.Executed != 1 || rep.CacheHits != 0 {
		t.Errorf("corrupt entry: executed=%d hits=%d, want 1/0", rep.Executed, rep.CacheHits)
	}
	if _, ok := store.Get(key); !ok {
		t.Error("entry not healed after recompute")
	}
}

func TestProbeOutputStoredAndCached(t *testing.T) {
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := campaign.NewCell("tiny", "Mean", "NoAttack", tinyParams(1))
	c.Probe = "rounds"
	spec := campaign.Spec{Name: "probe", Cells: []campaign.Cell{c}}

	check := func(rep *campaign.Report) {
		t.Helper()
		var rounds int
		if err := json.Unmarshal(rep.Results[0].Probe, &rounds); err != nil {
			t.Fatal(err)
		}
		if rounds != c.Params.Rounds {
			t.Errorf("probe saw %d rounds, want %d", rounds, c.Params.Rounds)
		}
	}
	check(mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 1}, spec))
	warm := mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 1}, spec)
	if warm.CacheHits != 1 {
		t.Fatalf("probe cell not cached")
	}
	check(warm)
}

func TestValidateRejectsUnknownNames(t *testing.T) {
	e := &campaign.Engine{Registry: testRegistry(), Workers: 1}
	for _, mutate := range []func(*campaign.Cell){
		func(c *campaign.Cell) { c.Dataset = "imagenet" },
		func(c *campaign.Cell) { c.Rule = "nope" },
		func(c *campaign.Cell) { c.Attack = "nope" },
		func(c *campaign.Cell) { c.Probe = "nope" },
	} {
		c := campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1))
		mutate(&c)
		if _, err := e.Run(context.Background(), campaign.Spec{Name: "bad", Cells: []campaign.Cell{c}}); err == nil {
			t.Errorf("engine accepted invalid cell %s", c.ID())
		}
	}
}

func TestFilter(t *testing.T) {
	spec := testSpec()
	got := spec.Filter("SignGuard/LIE")
	if len(got.Cells) != 2 {
		t.Fatalf("filter kept %d cells, want 2 (one per seed)", len(got.Cells))
	}
	for _, c := range got.Cells {
		if c.Rule != "SignGuard" || c.Attack != "LIE" {
			t.Errorf("filter kept %s", c.ID())
		}
	}
	if all := spec.Filter(""); len(all.Cells) != len(spec.Cells) {
		t.Error("empty filter should keep everything")
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := &campaign.Engine{Registry: testRegistry(), Workers: 2}
	if _, err := e.Run(ctx, testSpec()); err == nil {
		t.Error("cancelled context should fail the run")
	}
}

func TestExportFormats(t *testing.T) {
	rep := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: 2}, testSpec())

	var csvOut strings.Builder
	if err := campaign.WriteCSV(&csvOut, rep.Results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 1+len(rep.Results) {
		t.Errorf("csv has %d lines, want %d", len(lines), 1+len(rep.Results))
	}
	if !strings.HasPrefix(lines[0], "key,id,dataset,rule,attack") {
		t.Errorf("csv header = %q", lines[0])
	}

	var jsonOut strings.Builder
	if err := campaign.WriteJSON(&jsonOut, rep.Results); err != nil {
		t.Fatal(err)
	}
	var decoded []campaign.CellResult
	if err := json.Unmarshal([]byte(jsonOut.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rep.Results) {
		t.Errorf("json round-trips %d results, want %d", len(decoded), len(rep.Results))
	}

	if err := campaign.WriteExport(&strings.Builder{}, "xml", nil); err == nil {
		t.Error("unknown export format accepted")
	}
}

func TestStoreKeysAndDelete(t *testing.T) {
	store, err := campaign.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := campaign.Spec{Name: "keys", Cells: []campaign.Cell{
		campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(1)),
		campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1)),
	}}
	mustRun(t, &campaign.Engine{Registry: testRegistry(), Store: store, Workers: 1}, spec)
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("store holds %d keys, want 2", len(keys))
	}
	if err := store.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	if store.Has(keys[0]) {
		t.Error("deleted key still present")
	}
	if err := store.Delete("missing"); err != nil {
		t.Error("deleting a missing key should be a no-op")
	}
}

// TestProgressReporting checks the progress stream: one event per unique
// cell, monotone Done, cache hits flagged, and a positive ETA mid-run.
func TestProgressReporting(t *testing.T) {
	spec := testSpec()
	var events []campaign.ProgressEvent
	e := &campaign.Engine{
		Registry: testRegistry(), Workers: 2,
		Progress: func(ev campaign.ProgressEvent) { events = append(events, ev) },
	}
	mustRun(t, e, spec)
	if len(events) != len(spec.Cells) {
		t.Fatalf("%d progress events for %d cells", len(events), len(spec.Cells))
	}
	sawETA := false
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(spec.Cells) {
			t.Errorf("event %d: done=%d total=%d", i, ev.Done, ev.Total)
		}
		if ev.Cached {
			t.Errorf("event %d: cache hit without a store", i)
		}
		if ev.ETA > 0 {
			sawETA = true
		}
	}
	if !sawETA {
		t.Error("no event carried an ETA estimate")
	}
}

func TestMergeAndIDs(t *testing.T) {
	a := campaign.Spec{Name: "a", Cells: []campaign.Cell{campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))}}
	b := campaign.Spec{Name: "b", Cells: []campaign.Cell{campaign.NewCell("tiny", "SignGuard", "LIE", tinyParams(2))}}
	m := campaign.Merge("ab", a, b)
	if m.Name != "ab" || len(m.Cells) != 2 {
		t.Fatalf("merge = %+v", m)
	}
	id := m.Cells[0].ID()
	for _, want := range []string{"tiny/", "Mean", "LIE", "seed=1"} {
		if !strings.Contains(id, want) {
			t.Errorf("ID %q missing %q", id, want)
		}
	}
	c := m.Cells[1]
	c.NonIIDS = 0.5
	c.NumByz = 3
	c.AttackParam = 2.5
	id = c.ID()
	for _, want := range []string{"byz=3", "niid=0.5", "@2.5"} {
		if !strings.Contains(id, want) {
			t.Errorf("ID %q missing %q", id, want)
		}
	}
	_ = fmt.Sprintf("%v", m)
}
