package campaign_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// benchSpec is a 16-cell grid sized so one cell takes tens of
// milliseconds: enough work for the worker pool to matter, small enough
// for `go test -bench` to stay fast.
func benchSpec() campaign.Spec {
	spec := campaign.Spec{Name: "bench"}
	for _, seed := range []int64{1, 2, 3, 4} {
		for _, rule := range []string{"Mean", "SignGuard"} {
			for _, att := range []string{"SignFlip", "LIE"} {
				spec.Cells = append(spec.Cells, campaign.NewCell("tiny", rule, att, tinyParams(seed)))
			}
		}
	}
	return spec
}

// BenchmarkCampaignThroughput compares sequential and parallel campaign
// execution; the cells/s metric is the engine's sweep throughput — the
// baseline future scheduler work is measured against.
func BenchmarkCampaignThroughput(b *testing.B) {
	spec := benchSpec()
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := &campaign.Engine{Registry: testRegistry(), Workers: workers}
				if _, err := e.Run(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(spec.Cells)*b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkWarmCache measures a fully-cached campaign run: the cost of
// resuming a finished sweep (hashing + store reads only).
func BenchmarkWarmCache(b *testing.B) {
	spec := benchSpec()
	store, err := campaign.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	e := &campaign.Engine{Registry: testRegistry(), Store: store}
	if _, err := e.Run(context.Background(), spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Executed != 0 {
			b.Fatalf("warm run executed %d cells", rep.Executed)
		}
	}
	b.ReportMetric(float64(len(spec.Cells)*b.N)/b.Elapsed().Seconds(), "cells/s")
}
