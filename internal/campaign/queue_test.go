package campaign_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/signguard/signguard/internal/campaign"
)

// fakeClock is a manually-advanced clock for lease-expiry tests: no real
// sleeps anywhere in the scheduler suite.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestQueueFIFOAndDedup(t *testing.T) {
	q := campaign.NewQueue([]string{"a", "b", "a", "c"}, 0, nil)
	if got := q.Lease("w1", 2); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("first lease = %v, want [a b]", got)
	}
	if got := q.Lease("w2", 5); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("second lease = %v, want [c]", got)
	}
	if got := q.Lease("w2", 1); got != nil {
		t.Fatalf("empty queue leased %v", got)
	}
	pending, leased, done, total := q.Stats()
	if pending != 0 || leased != 3 || done != 0 || total != 3 {
		t.Fatalf("stats = %d/%d/%d/%d, want 0/3/0/3", pending, leased, done, total)
	}
}

func TestQueueCompleteIdempotent(t *testing.T) {
	q := campaign.NewQueue([]string{"a", "b"}, 0, nil)
	q.Lease("w1", 1) // a leased, b pending
	if !q.Complete("a") {
		t.Error("completing a leased key should be fresh")
	}
	if q.Complete("a") {
		t.Error("second completion should be a duplicate")
	}
	// Completing a still-pending key (result uploaded after the holder's
	// lease expired and the key was requeued) retires it too.
	if !q.Complete("b") {
		t.Error("completing a pending key should be fresh")
	}
	if q.Complete("nope") {
		t.Error("unknown keys must not complete")
	}
	if !q.Done() {
		t.Error("queue should be done")
	}
	if got := q.Lease("w2", 1); got != nil {
		t.Errorf("done queue leased %v", got)
	}
}

func TestQueueLeaseExpiryRequeues(t *testing.T) {
	clock := newFakeClock()
	q := campaign.NewQueue([]string{"a", "b", "c"}, time.Minute, clock.Now)
	if got := q.Lease("crasher", 2); len(got) != 2 {
		t.Fatalf("leased %v", got)
	}
	// TTL not yet reached: nothing comes back.
	clock.Advance(59 * time.Second)
	if got := q.Lease("rescuer", 3); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("pre-expiry lease = %v, want [c]", got)
	}
	// Past the TTL the crasher's cells return, in sorted order, and are
	// leasable again.
	clock.Advance(2 * time.Second)
	if got := q.Lease("rescuer", 3); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("post-expiry lease = %v, want [a b]", got)
	}
	pending, leased, done, total := q.Stats()
	if pending != 0 || leased != 3 || done != 0 || total != 3 {
		t.Fatalf("stats = %d/%d/%d/%d, want 0/3/0/3", pending, leased, done, total)
	}
}

func TestQueueHeartbeatRenews(t *testing.T) {
	clock := newFakeClock()
	q := campaign.NewQueue([]string{"a"}, time.Minute, clock.Now)
	q.Lease("w1", 1)
	clock.Advance(50 * time.Second)
	if n := q.Heartbeat("w1"); n != 1 {
		t.Fatalf("heartbeat renewed %d leases, want 1", n)
	}
	// 50s past the original expiry but only 50s past the renewal: held.
	clock.Advance(50 * time.Second)
	if got := q.Lease("w2", 1); got != nil {
		t.Fatalf("renewed lease stolen: %v", got)
	}
	// Past the renewed expiry with no further heartbeat: requeued.
	clock.Advance(11 * time.Second)
	if n := q.Heartbeat("w1"); n != 0 {
		t.Fatalf("expired worker still renewed %d leases", n)
	}
	if got := q.Lease("w2", 1); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("expired lease not requeued: %v", got)
	}
}

func TestQueueZeroTTLNeverExpires(t *testing.T) {
	clock := newFakeClock()
	q := campaign.NewQueue([]string{"a"}, 0, clock.Now)
	q.Lease("w1", 1)
	clock.Advance(1000 * time.Hour)
	if got := q.Lease("w2", 1); got != nil {
		t.Fatalf("zero-TTL lease expired: %v", got)
	}
	if n := q.Heartbeat("w1"); n != 1 {
		t.Fatalf("zero-TTL heartbeat counted %d leases, want 1", n)
	}
}

func TestQueueCompletedCellsStayRetired(t *testing.T) {
	clock := newFakeClock()
	q := campaign.NewQueue([]string{"a", "b"}, time.Minute, clock.Now)
	q.Lease("w1", 2)
	q.Complete("a")
	// Even after the worker dies, the completed cell must not reappear.
	clock.Advance(2 * time.Minute)
	if got := q.Lease("w2", 2); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("post-expiry lease = %v, want [b]", got)
	}
}
