package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// specVersion is folded into every cell hash. Bump it whenever cell
// execution semantics change in a way that invalidates stored results.
const specVersion = 1

// hashJSON hashes the canonical JSON encoding of v. encoding/json emits
// struct fields in declaration order, so the encoding — and therefore the
// hash — is deterministic for our plain-data types.
func hashJSON(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// Key returns the cell's content hash: the identity under which its result
// is stored and resumed. Two cells with equal specs share a key. The
// documented-equivalent participation spellings "" and "full" normalize to
// one identity, as do the codec spellings "" and "identity" (the identity
// round trip is byte-identical to no codec stage at all, so the results
// are interchangeable).
func (c Cell) Key() (string, error) {
	if c.Participation == ParticipationFull {
		c.Participation = ""
	}
	if c.Codec == CodecIdentity && len(c.CodecHyper) == 0 {
		c.Codec = ""
	}
	envelope := struct {
		Version int
		Cell    Cell
	}{specVersion, c}
	return hashJSON(envelope)
}

// Hash returns a deterministic digest of the result's experimental content,
// excluding runtime-only fields (duration, cache provenance). Two runs of
// the same cell must produce equal hashes regardless of worker count or
// cache state.
func (r *CellResult) Hash() (string, error) {
	clean := *r
	clean.DurationMS = 0
	clean.Cached = false
	return hashJSON(&clean)
}
