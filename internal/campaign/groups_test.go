package campaign_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// fakeResult builds a minimal CellResult for exporter tests.
func fakeResult(rule string, seed int64, best, final float64) *campaign.CellResult {
	c := campaign.NewCell("tiny", rule, "LIE", tinyParams(seed))
	return &campaign.CellResult{
		Key: c.ID(), Cell: c, RuleName: rule, AttackName: "LIE",
		BestAccuracy: best, FinalAccuracy: final,
	}
}

func TestGroupBySeedStats(t *testing.T) {
	results := []*campaign.CellResult{
		fakeResult("Mean", 1, 80, 78),
		fakeResult("Mean", 2, 82, 80),
		fakeResult("Mean", 3, 84, 82),
		fakeResult("SignGuard", 1, 90, 89),
	}
	results[3].HasSelection = true
	results[3].SelHonest = 0.95
	results[3].SelMalicious = 0.1

	groups := campaign.GroupBySeed(results)
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	g := groups[0]
	if g.N != 3 || len(g.Seeds) != 3 {
		t.Fatalf("group 0 has N=%d seeds=%v", g.N, g.Seeds)
	}
	if g.Best.Mean != 82 {
		t.Errorf("best mean %v, want 82", g.Best.Mean)
	}
	if math.Abs(g.Best.Std-2) > 1e-12 {
		t.Errorf("best std %v, want 2", g.Best.Std)
	}
	// df=2 → t=4.303; CI = 4.303·2/√3.
	wantCI := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(g.Best.CI95-wantCI) > 1e-9 {
		t.Errorf("best CI %v, want %v", g.Best.CI95, wantCI)
	}
	if g.HasSelection {
		t.Error("Mean group claims selection stats")
	}
	if strings.Contains(g.ID, "seed=") {
		t.Errorf("group id %q still carries a seed", g.ID)
	}

	sg := groups[1]
	if sg.N != 1 || !sg.HasSelection {
		t.Fatalf("SignGuard group N=%d HasSelection=%v", sg.N, sg.HasSelection)
	}
	if sg.Best.Std != 0 || sg.Best.CI95 != 0 {
		t.Errorf("singleton group has spread: %+v", sg.Best)
	}
	if sg.SelMalicious.Mean != 0.1 {
		t.Errorf("sel malicious mean %v", sg.SelMalicious.Mean)
	}
}

// TestGroupBySeedSingleSeedNoCI: a singleton group reports the value as its
// mean with zero spread — FormatMeanCI then prints it without a ±.
func TestGroupBySeedSingleSeedNoCI(t *testing.T) {
	groups := campaign.GroupBySeed([]*campaign.CellResult{fakeResult("Mean", 7, 81.5, 80)})
	if len(groups) != 1 {
		t.Fatalf("%d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.N != 1 || g.Best.Mean != 81.5 {
		t.Fatalf("singleton group: %+v", g)
	}
	if g.Best.Std != 0 || g.Best.CI95 != 0 || g.Final.Std != 0 || g.Final.CI95 != 0 {
		t.Errorf("singleton group has spread: best %+v final %+v", g.Best, g.Final)
	}
	if got := campaign.FormatMeanCI(g.Best, 1); got != "81.5" {
		t.Errorf("singleton formatted %q, want bare mean", got)
	}
}

// TestGroupBySeedNaNMetrics: NaN accuracies (a diverged run whose
// evaluation collapsed) must not panic and must poison the group mean the
// way IEEE arithmetic says — visible, not silently dropped.
func TestGroupBySeedNaNMetrics(t *testing.T) {
	r1 := fakeResult("Mean", 1, math.NaN(), math.NaN())
	r1.Diverged = true
	r2 := fakeResult("Mean", 2, 80, 78)
	groups := campaign.GroupBySeed([]*campaign.CellResult{r1, r2})
	if len(groups) != 1 {
		t.Fatalf("%d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.N != 2 || g.Diverged != 1 {
		t.Fatalf("group: N=%d diverged=%d", g.N, g.Diverged)
	}
	if !math.IsNaN(g.Best.Mean) || !math.IsNaN(g.Final.Mean) {
		t.Errorf("NaN member did not propagate: best=%v final=%v", g.Best.Mean, g.Final.Mean)
	}
}

// TestGroupBySeedMismatchedTraces: seed replicas evaluated on different
// schedules (mismatched round counts, e.g. grids merged across EvalEvery
// changes) still group on the scalar summaries without panicking.
func TestGroupBySeedMismatchedTraces(t *testing.T) {
	r1 := fakeResult("Mean", 1, 80, 78)
	r1.EvalRounds = []int{0, 2, 4}
	r1.EvalAccuracies = []float64{10, 50, 78}
	r1.TrainLoss = []float64{2, 1, 0.5, 0.4, 0.3}
	r2 := fakeResult("Mean", 2, 82, 80)
	r2.EvalRounds = []int{0, 5}
	r2.EvalAccuracies = []float64{12, 80}
	r2.TrainLoss = []float64{2, 0.9}
	groups := campaign.GroupBySeed([]*campaign.CellResult{r1, r2, nil})
	if len(groups) != 1 {
		t.Fatalf("%d groups, want 1 (nil results skipped)", len(groups))
	}
	g := groups[0]
	if g.N != 2 || g.Best.Mean != 81 || g.Final.Mean != 79 {
		t.Fatalf("group over mismatched traces: %+v", g)
	}
	if len(g.Seeds) != 2 {
		t.Errorf("seeds: %v", g.Seeds)
	}
}

func TestGroupExportFormats(t *testing.T) {
	results := []*campaign.CellResult{
		fakeResult("Mean", 1, 80, 78),
		fakeResult("Mean", 2, 82, 80),
	}
	var csvBuf bytes.Buffer
	if err := campaign.WriteExport(&csvBuf, "group-csv", results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("group CSV has %d lines, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "group_id,") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ",2,1 2,") {
		t.Errorf("group row lost n/seeds: %s", lines[1])
	}

	var jsonBuf bytes.Buffer
	if err := campaign.WriteExport(&jsonBuf, "group-json", results); err != nil {
		t.Fatal(err)
	}
	var groups []campaign.SeedGroup
	if err := json.Unmarshal(jsonBuf.Bytes(), &groups); err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Best.Mean != 81 {
		t.Fatalf("group JSON round-trip: %+v", groups)
	}

	if err := campaign.WriteExport(&jsonBuf, "nope", results); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestFormatMeanCI(t *testing.T) {
	if got := campaign.FormatMeanCI(campaign.GroupStat{Mean: 81.5}, 2); got != "81.50" {
		t.Errorf("singleton format %q", got)
	}
	got := campaign.FormatMeanCI(campaign.GroupStat{Mean: 81.5, CI95: 1.25}, 1)
	if got != "81.5±1.2" && got != "81.5±1.3" {
		t.Errorf("mean±ci format %q", got)
	}
}

func TestReplicateSeeds(t *testing.T) {
	spec := campaign.Spec{Name: "s", Cells: []campaign.Cell{
		campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1)),
		campaign.NewCell("tiny", "SignGuard", "LIE", tinyParams(1)),
	}}
	out := campaign.ReplicateSeeds(spec, []int64{7, 8, 9})
	if len(out.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(out.Cells))
	}
	// Seed replicas of one cell stay contiguous.
	for i, seed := range []int64{7, 8, 9} {
		if out.Cells[i].Params.Seed != seed || out.Cells[i].Rule != "Mean" {
			t.Errorf("cell %d = %s", i, out.Cells[i].ID())
		}
	}
	if out.Cells[3].Rule != "SignGuard" {
		t.Errorf("second group rule %s", out.Cells[3].Rule)
	}
	same := campaign.ReplicateSeeds(spec, nil)
	if len(same.Cells) != 2 {
		t.Errorf("empty seed list changed the spec: %d cells", len(same.Cells))
	}
}
