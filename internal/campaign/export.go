package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of WriteCSV, one row per cell result.
var csvHeader = []string{
	"key", "id", "dataset", "rule", "attack", "attack_param", "rule_hyper",
	"participation", "sample_k", "codec", "codec_hyper",
	"num_byz", "noniid_s", "seed", "clients", "rounds",
	"best_acc", "final_acc", "diverged",
	"sel_honest", "sel_malicious", "wire_bytes", "duration_ms", "cached",
}

// WriteCSV emits one row per result, suitable for spreadsheet/pandas
// post-processing of a sweep.
func WriteCSV(w io.Writer, results []*CellResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, r := range results {
		c := r.Cell
		selH, selM := "", ""
		if r.HasSelection {
			selH, selM = f(r.SelHonest), f(r.SelMalicious)
		}
		row := []string{
			r.Key, c.ID(), c.Dataset, c.Rule, c.Attack, f(c.AttackParam),
			formatHyper(c.RuleHyper, " "), c.Participation, strconv.Itoa(c.SampleK),
			c.Codec, formatHyper(c.CodecHyper, " "),
			strconv.Itoa(r.Cell.EffectiveByz()), f(c.NonIIDS),
			strconv.FormatInt(c.Params.Seed, 10),
			strconv.Itoa(c.Params.Clients), strconv.Itoa(c.Params.Rounds),
			f(r.BestAccuracy), f(r.FinalAccuracy), strconv.FormatBool(r.Diverged),
			selH, selM, strconv.FormatInt(r.WireBytes, 10),
			strconv.FormatInt(r.DurationMS, 10), strconv.FormatBool(r.Cached),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the results as an indented JSON array (full traces and
// probe payloads included).
func WriteJSON(w io.Writer, results []*CellResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []*CellResult{}
	}
	return enc.Encode(results)
}

// WriteExport dispatches on format: per-cell rows ("csv", "json") or
// seed-group aggregates with mean/std/95% CI ("group-csv", "group-json").
func WriteExport(w io.Writer, format string, results []*CellResult) error {
	switch format {
	case "csv":
		return WriteCSV(w, results)
	case "json":
		return WriteJSON(w, results)
	case "group-csv":
		return WriteGroupCSV(w, results)
	case "group-json":
		return WriteGroupJSON(w, results)
	default:
		return fmt.Errorf("campaign: unknown export format %q (want csv|json|group-csv|group-json)", format)
	}
}
