package campaign_test

import (
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/sanitize"
)

// TestNonFiniteAxisKeepsHistoricalHashes pins the cache-compatibility
// contract of the hostile-input axis: a cell without a policy hashes
// exactly as before the field existed, and a stamped policy IS identity.
func TestNonFiniteAxisKeepsHistoricalHashes(t *testing.T) {
	base := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	zero := base
	zero.NonFinitePolicy = ""
	k2, err := zero.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("zero-valued NonFinitePolicy changed the cell hash")
	}
	reject := base
	reject.NonFinitePolicy = sanitize.Reject.String()
	kr, err := reject.Key()
	if err != nil {
		t.Fatal(err)
	}
	clamp := base
	clamp.NonFinitePolicy = sanitize.Clamp.String()
	kc, err := clamp.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kr == k1 || kc == k1 || kr == kc {
		t.Fatal("NonFinitePolicy not part of the cell identity")
	}
}

func TestNonFiniteAxisID(t *testing.T) {
	c := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	if strings.Contains(c.ID(), "nonfinite") {
		t.Errorf("policy-free cell ID %q mentions nonfinite", c.ID())
	}
	c.NonFinitePolicy = "clamp"
	if !strings.Contains(c.ID(), "nonfinite=clamp") {
		t.Errorf("cell ID %q does not render the non-finite axis", c.ID())
	}
}

func TestValidateRejectsBadNonFinitePolicy(t *testing.T) {
	bad := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	bad.NonFinitePolicy = "ignore"
	if err := testRegistry().Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{bad}}); err == nil ||
		!strings.Contains(err.Error(), "ignore") {
		t.Errorf("unknown non-finite policy passed validation: %v", err)
	}
}

// TestApplyNonFinite: the grid-wide stamping helper behind the
// -nonfinite-policy flag.
func TestApplyNonFinite(t *testing.T) {
	spec := testSpec()
	stamped := campaign.ApplyNonFinite(spec, "reject")
	if len(stamped.Cells) != len(spec.Cells) {
		t.Fatalf("stamped %d cells, want %d", len(stamped.Cells), len(spec.Cells))
	}
	for i, c := range stamped.Cells {
		if c.NonFinitePolicy != "reject" {
			t.Fatalf("cell %d not stamped: %+v", i, c)
		}
		if spec.Cells[i].NonFinitePolicy != "" {
			t.Fatal("ApplyNonFinite mutated the input spec")
		}
	}
	same := campaign.ApplyNonFinite(spec, "")
	for i := range same.Cells {
		if same.Cells[i].NonFinitePolicy != "" {
			t.Fatalf("empty policy stamped cell %d", i)
		}
	}
}

// TestNonFiniteCellsThroughEngine runs the hostile-input axis end to end:
// under the legacy zero policy a NaN-injection attack diverges the run (the
// historical semantics), under the reject policy the same cell screens the
// hostile submissions and completes.
func TestNonFiniteCellsThroughEngine(t *testing.T) {
	reg := testRegistry()
	reg.RegisterAttack("NonFinite-NaN", func(_ campaign.Cell, _ int64) (attack.Attack, error) {
		return attack.NewNonFinite(attack.NaNValue), nil
	})
	legacy := campaign.NewCell("tiny", "Mean", "NonFinite-NaN", tinyParams(1))
	screened := legacy
	screened.NonFinitePolicy = sanitize.Reject.String()
	spec := campaign.Spec{Name: "hostile", Cells: []campaign.Cell{legacy, screened}}

	e := &campaign.Engine{Registry: reg, Workers: 2}
	rep := mustRun(t, e, spec)
	if !rep.Results[0].Diverged {
		t.Error("legacy policy did not diverge under NaN injection")
	}
	if rep.Results[1].Diverged {
		t.Error("reject policy diverged: hostile submissions were not screened")
	}
	if rep.Results[1].NonFiniteScreened == 0 {
		t.Error("reject policy screened nothing under a NaN-injection attack")
	}
}
