package campaign

import (
	"fmt"
	"sync"
	"time"

	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
)

// CellRunner executes one cell to its stored-form result. It is the seam
// between schedulers and execution: the in-process engine and the
// distributed worker (internal/campaign/dist) both run cells through the
// same implementation, so a single result format and a single content-hash
// scheme serve local and distributed campaigns alike.
type CellRunner interface {
	// RunCell trains the cell and returns its result stamped with key (the
	// cell's content hash, under which the result is stored).
	RunCell(c Cell, key string) (*CellResult, error)
}

// Runner is the standard CellRunner: it resolves the cell's names through a
// Registry, loads each distinct dataset once through a per-Runner cache,
// and stamps the result's wall-clock duration.
type Runner struct {
	// Registry resolves cell names (required).
	Registry *Registry
	// SimWorkers bounds each cell's in-simulation parallelism: the
	// per-client gradient phase and the aggregation-rule kernels (via
	// fl.Config.Workers). 0 = automatic (all CPUs); results are
	// byte-identical for any value.
	SimWorkers int
	// BatchClients computes every cell's local gradients through the
	// batched engine regardless of the cell's own BatchClients axis. Like
	// SimWorkers it is an execution knob, not cell identity: the batched
	// engine is byte-identical, so results stay cache-compatible with
	// per-client runs of the same cells. (The non-bitwise fast mode has no
	// runner-level override for exactly that reason — it must change the
	// cell hash, so it only exists as the Cell.FastLocal axis.)
	BatchClients bool

	once     sync.Once
	datasets *dsCache
}

// RunCell implements CellRunner.
func (r *Runner) RunCell(c Cell, key string) (*CellResult, error) {
	if r.Registry == nil {
		return nil, fmt.Errorf("campaign: runner has no registry")
	}
	r.once.Do(func() { r.datasets = &dsCache{m: map[dsKey]*dsEntry{}} })
	t0 := time.Now()
	res, err := r.executeCell(c, key)
	if err != nil {
		return nil, err
	}
	res.DurationMS = time.Since(t0).Milliseconds()
	return res, nil
}

// executeCell resolves the cell through the registry and trains it.
func (r *Runner) executeCell(c Cell, key string) (*CellResult, error) {
	db, err := r.Registry.dataset(c.Dataset)
	if err != nil {
		return nil, err
	}
	p := c.Params
	dataset, err := r.datasets.get(
		dsKey{name: c.Dataset, seed: p.Seed + 7, train: p.TrainSize, test: p.TestSize},
		func() (*data.Dataset, error) { return db.Load(p.Seed+7, p.TrainSize, p.TestSize) },
	)
	if err != nil {
		return nil, fmt.Errorf("loading dataset %s: %w", c.Dataset, err)
	}

	numByz := c.EffectiveByz()
	rule, err := r.Registry.buildDefense(c, numByz, p.Seed+11)
	if err != nil {
		return nil, fmt.Errorf("building rule %s: %w", c.Rule, err)
	}
	buildAttack, err := r.Registry.attack(c.Attack)
	if err != nil {
		return nil, err
	}
	att, err := buildAttack(c, p.Seed+13)
	if err != nil {
		return nil, fmt.Errorf("building attack %s: %w", c.Attack, err)
	}

	var probe *ProbeInstance
	if c.Probe != "" {
		buildProbe, err := r.Registry.probe(c.Probe)
		if err != nil {
			return nil, err
		}
		probe, err = buildProbe(c)
		if err != nil {
			return nil, fmt.Errorf("building probe %s: %w", c.Probe, err)
		}
	}

	var nonIID *fl.NonIID
	if c.NonIIDS > 0 {
		nonIID = &fl.NonIID{S: c.NonIIDS, ShardsPerClient: c.NonIIDShards}
	}
	participation, err := participationFor(c)
	if err != nil {
		return nil, err
	}
	wireCodec, err := r.Registry.codecFor(c)
	if err != nil {
		return nil, fmt.Errorf("building codec %s: %w", c.Codec, err)
	}
	policy, err := nonFiniteFor(c)
	if err != nil {
		return nil, err
	}

	x := &CellExec{
		Dataset:       dataset,
		NewModel:      db.NewModel,
		LR:            db.LR,
		Rule:          rule,
		Attack:        att,
		NumByz:        numByz,
		NonIID:        nonIID,
		Participation: participation,
		Codec:         wireCodec,
		NonFinite:     policy,
		Params:        p,
		SimWorkers:    r.SimWorkers,
		BatchClients:  c.BatchClients || r.BatchClients,
		FastLocal:     c.FastLocal,
	}
	if probe != nil {
		x.Hook = probe.Hook
	}
	res, err := x.Run()
	if err != nil {
		return nil, err
	}
	out := newCellResult(c, key, res)
	if probe != nil && probe.Finish != nil {
		raw, err := probe.Finish()
		if err != nil {
			return nil, fmt.Errorf("probe %s: %w", c.Probe, err)
		}
		out.Probe = raw
	}
	return out, nil
}
