package campaign_test

import (
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// goldenCell is a fixed pre-extension cell whose key is pinned below. Any
// change to the hash input — a new non-omitempty field, a renamed axis, a
// different Params encoding — moves the key and fails the test loudly,
// because it would orphan every cached campaign result on disk.
func goldenCell() campaign.Cell {
	return campaign.NewCell("mnist", "Mean", "LIE", campaign.Params{
		Clients: 8, ByzFraction: 0.25, Rounds: 6, BatchSize: 4,
		EvalEvery: 3, EvalSamples: 40, TrainSize: 160, TestSize: 60, Seed: 1,
	})
}

const goldenCellKey = "6e84abaec4ae43d5eec0ab130ff58244a387bf4931db7074ac3074ff4521fb09"

// TestCellKeyGolden pins the content hash of a fixed cell to a literal.
func TestCellKeyGolden(t *testing.T) {
	key, err := goldenCell().Key()
	if err != nil {
		t.Fatal(err)
	}
	if key != goldenCellKey {
		t.Fatalf("golden cell key moved: %s (pinned %s) — this invalidates every on-disk campaign cache", key, goldenCellKey)
	}
}

// TestCellKeyExtensionAxesAreFree asserts the hash-compatibility contract
// every extension axis must honor: setting an axis to its zero value leaves
// the key identical to a cell that predates the axis. This is what lets new
// axes (RuleHyper, Codec, Participation, ...) land without invalidating
// cached results for the grid that never uses them.
func TestCellKeyExtensionAxesAreFree(t *testing.T) {
	for name, set := range map[string]func(*campaign.Cell){
		"attackParam":     func(c *campaign.Cell) { c.AttackParam = 0 },
		"ruleHyper":       func(c *campaign.Cell) { c.RuleHyper = map[string]float64{} },
		"participation":   func(c *campaign.Cell) { c.Participation = "" },
		"sampleK":         func(c *campaign.Cell) { c.SampleK = 0 },
		"nonIIDS":         func(c *campaign.Cell) { c.NonIIDS = 0 },
		"nonIIDShards":    func(c *campaign.Cell) { c.NonIIDShards = 0 },
		"batchClients":    func(c *campaign.Cell) { c.BatchClients = false },
		"fastLocal":       func(c *campaign.Cell) { c.FastLocal = false },
		"codec":           func(c *campaign.Cell) { c.Codec = "" },
		"codecHyper":      func(c *campaign.Cell) { c.CodecHyper = map[string]float64{} },
		"nonFinitePolicy": func(c *campaign.Cell) { c.NonFinitePolicy = "" },
		"probe":           func(c *campaign.Cell) { c.Probe = "" },
		"probeParam":      func(c *campaign.Cell) { c.ProbeParam = 0 },
	} {
		cell := goldenCell()
		set(&cell)
		key, err := cell.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key != goldenCellKey {
			t.Errorf("zero-valued %s axis changed the key to %s — extension axes must be free when unused", name, key)
		}
	}
}
