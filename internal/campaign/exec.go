package campaign

import (
	"encoding/json"
	"math/rand"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/data"
	"github.com/signguard/signguard/internal/fl"
	"github.com/signguard/signguard/internal/nn"
	"github.com/signguard/signguard/internal/sanitize"
)

// CellExec is the fully-resolved form of one cell: dataset loaded, rule and
// attack built, hook attached. It is the single place the fl.Config for an
// experiment cell is assembled — the engine and the programmatic
// experiments.RunCell escape hatch both run through it.
type CellExec struct {
	Dataset  *data.Dataset
	NewModel func(rng *rand.Rand) (nn.Classifier, error)
	LR       float64
	Rule     aggregate.Rule
	Attack   attack.Attack
	NumByz   int
	NonIID   *fl.NonIID
	// Participation overrides the round pipeline's client-selection stage
	// (nil = full participation).
	Participation fl.Participation
	// Codec overrides the round pipeline's gradient-compression stage
	// (nil = the lossless identity wire format).
	Codec codec.Codec
	// NonFinite selects the server's non-finite ingest screen (the zero
	// policy keeps the legacy diverge-on-non-finite contract).
	NonFinite sanitize.Policy
	Hook      func(*fl.RoundState)
	Params    Params
	// SimWorkers bounds the in-simulation parallelism (0 = automatic,
	// 1 = sequential): the per-client gradient phase and the aggregation
	// rule's kernels (threaded through fl.Config.Workers into
	// aggregate.SetWorkers). Results are byte-identical for any value.
	SimWorkers int
	// BatchClients selects the batched local-compute engine
	// (byte-identical to the per-client path); FastLocal additionally
	// enables its non-bitwise fast kernels.
	BatchClients bool
	FastLocal    bool
}

// Run executes the cell's training run.
func (x *CellExec) Run() (*fl.RunResult, error) {
	sim, err := fl.New(fl.Config{
		Dataset:      x.Dataset,
		NewModel:     x.NewModel,
		Rule:         x.Rule,
		Attack:       x.Attack,
		Clients:      x.Params.Clients,
		NumByz:       x.NumByz,
		Rounds:       x.Params.Rounds,
		BatchSize:    x.Params.BatchSize,
		LR:           x.LR,
		Momentum:     0.9,
		WeightDecay:  5e-4,
		EvalEvery:    x.Params.EvalEvery,
		EvalSamples:  x.Params.EvalSamples,
		NonIID:       x.NonIID,
		NonFinite:    x.NonFinite,
		Pipeline:     fl.Pipeline{Participation: x.Participation, Codec: x.Codec},
		Seed:         x.Params.Seed,
		RoundHook:    x.Hook,
		Workers:      x.SimWorkers,
		BatchClients: x.BatchClients,
		FastLocal:    x.FastLocal,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// CellResult is the stored outcome of one cell: the summary quantities the
// paper's tables and figures report, plus the full evaluation trace and any
// probe output. It is pure data, safe to serialize and hash.
type CellResult struct {
	// Key is the cell's content hash (its identity in the store).
	Key  string
	Cell Cell

	RuleName   string
	AttackName string

	BestAccuracy  float64
	FinalAccuracy float64
	Diverged      bool

	// Selection accounting (the paper's Table II quantities); valid only
	// when HasSelection is true.
	HasSelection bool
	SelHonest    float64 `json:",omitempty"`
	SelMalicious float64 `json:",omitempty"`

	// EvalRounds/EvalAccuracies are the evaluated (round, accuracy) pairs
	// — the curves of Fig. 5.
	EvalRounds     []int     `json:",omitempty"`
	EvalAccuracies []float64 `json:",omitempty"`
	// TrainLoss is the per-round mean honest training loss.
	TrainLoss []float64 `json:",omitempty"`

	// WireBytes is the bytes-shipped total across all rounds: the sum of
	// every submitted gradient's encoded wire size under the cell's codec.
	WireBytes int64 `json:",omitempty"`

	// NonFiniteScreened is the run total of submissions the non-finite
	// ingest screen dropped (cells with a NonFinitePolicy axis only).
	NonFiniteScreened int `json:",omitempty"`

	// Probe holds the serialized output of the cell's probe, if any.
	Probe json.RawMessage `json:",omitempty"`

	// DurationMS is the wall-clock execution time. Runtime provenance:
	// excluded from Hash.
	DurationMS int64 `json:",omitempty"`
	// Cached reports that this result came from the store, not a fresh
	// execution. Never serialized.
	Cached bool `json:"-"`
}

// newCellResult converts an fl.RunResult into the stored form.
func newCellResult(c Cell, key string, res *fl.RunResult) *CellResult {
	out := &CellResult{
		Key:               key,
		Cell:              c,
		RuleName:          res.RuleName,
		AttackName:        res.AttackName,
		BestAccuracy:      res.BestAccuracy,
		FinalAccuracy:     res.FinalAccuracy,
		Diverged:          res.Diverged,
		WireBytes:         res.WireBytes,
		NonFiniteScreened: res.NonFiniteScreened,
	}
	if h, m, ok := res.SelectionRates(); ok {
		out.HasSelection = true
		out.SelHonest = h
		out.SelMalicious = m
	}
	out.EvalRounds, out.EvalAccuracies = res.AccuracyTrace()
	for _, rm := range res.History {
		out.TrainLoss = append(out.TrainLoss, rm.TrainLoss)
	}
	return out
}
