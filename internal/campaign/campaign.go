// Package campaign is the experiment-campaign engine of the reproduction:
// a declarative scenario-grid model and a deterministic parallel executor
// for large dataset × defense × attack × Byzantine-fraction sweeps.
//
// A Campaign is a named list of Cells. Each Cell is a pure-data description
// of one training run — dataset key, rule name, attack name, Byzantine
// count, non-IID skew, optional probe, and the full simulation parameters.
// Because a Cell is plain data, it has a canonical content hash (Key), and
// the engine uses that hash to memoize results in an on-disk Store:
// interrupted campaigns resume with cache hits instead of recomputation,
// and re-running a completed campaign executes zero cells.
//
// The names inside a Cell are resolved through a Registry of builders, so
// the package knows nothing about which concrete datasets, defenses or
// attacks exist; internal/experiments registers the paper's grid and
// declares every table and figure as a campaign.
package campaign

import (
	"fmt"
	"maps"
	"sort"
	"strings"
)

// Params are the simulation parameters of one cell, mirroring the paper's
// experimental setup knobs. They are part of the cell's identity: any
// change produces a different content hash.
type Params struct {
	Clients     int
	ByzFraction float64
	Rounds      int
	BatchSize   int
	EvalEvery   int
	EvalSamples int
	TrainSize   int
	TestSize    int
	Seed        int64
}

// NumByz returns ⌊ByzFraction·Clients⌋.
func (p Params) NumByz() int { return int(p.ByzFraction * float64(p.Clients)) }

// Participation policy names a cell may carry. An empty Participation is
// equivalent to ParticipationFull (every client, every round).
const (
	ParticipationFull    = "full"
	ParticipationUniform = "uniform"
)

// CodecIdentity is the codec name equivalent to no codec at all: the
// identity round trip is byte-identical to an uncompressed run, so "" and
// "identity" normalize to one cell identity (mirroring Participation
// ""/"full").
const CodecIdentity = "identity"

// Cell is the declarative description of one experiment run. Every field
// is plain data so the cell can be hashed, stored and compared; behaviour
// is attached by name through a Registry. All extension fields are
// omitempty, so cells that do not use an axis keep their historical
// content hash (and therefore their cached results).
type Cell struct {
	// Dataset, Rule and Attack are registry keys.
	Dataset string
	Rule    string
	Attack  string
	// AttackParam parameterizes attacks that need a scalar, e.g. the
	// Reverse attack's scale or the TimeVarying attack's switch interval.
	AttackParam float64 `json:",omitempty"`
	// RuleHyper holds named defense hyperparameters (e.g. SignGuard's
	// "coord_fraction", DnC's "subdim"), resolved through the defense
	// registry. Unknown names fail validation before any cell trains.
	RuleHyper map[string]float64 `json:",omitempty"`
	// NumByz overrides the Byzantine count; -1 derives it from
	// Params.ByzFraction (the common case).
	NumByz int
	// Participation selects the per-round client participation policy
	// ("" or "full" = all clients; "uniform" = SampleK clients drawn
	// uniformly each round from the stage's own RNG stream).
	Participation string `json:",omitempty"`
	// SampleK is the per-round cohort size for "uniform" participation.
	SampleK int `json:",omitempty"`
	// NonIIDS, when > 0, trains on the paper's non-IID partition with
	// IID fraction s = NonIIDS and NonIIDShards shards per client.
	NonIIDS      float64 `json:",omitempty"`
	NonIIDShards int     `json:",omitempty"`
	// BatchClients selects the batched local-compute engine: each
	// simulation worker stacks its clients' minibatches into one matrix
	// and runs a single forward/backward per layer. Results are
	// byte-identical to the per-client engine, so the axis exists for
	// wall-clock comparison grids; execution-level batching without a new
	// cell identity goes through Runner.BatchClients instead.
	BatchClients bool `json:",omitempty"`
	// FastLocal additionally enables the batched engine's reassociated
	// fast kernels. NOT byte-identical (results agree to float64
	// accuracy), which is why it is cell identity: fast results must never
	// share a cache entry with exact ones. Requires BatchClients.
	FastLocal bool `json:",omitempty"`
	// Codec names the gradient-compression codec every submitted gradient
	// passes through between the adversary and the defense ("" or
	// "identity" = the lossless wire format; both spellings share one cell
	// identity). Names resolve through the codec registry.
	Codec string `json:",omitempty"`
	// CodecHyper holds named codec hyperparameters (topk's "k", qsgd's
	// "levels"), resolved through the codec registry like RuleHyper.
	// Unknown names fail validation before any cell trains.
	CodecHyper map[string]float64 `json:",omitempty"`
	// NonFinitePolicy selects the round pipeline's post-adversary screening
	// of non-finite gradients ("" = the legacy behavior: any non-finite
	// submission ends the run as diverged; "reject" / "clamp" /
	// "quarantine" apply the internal/sanitize policy per gradient).
	// Unknown names fail validation before any cell trains.
	NonFinitePolicy string `json:",omitempty"`
	// Probe names an optional registered per-round observer whose output
	// is stored with the result (e.g. the Fig. 2 sign-statistics probe).
	Probe      string  `json:",omitempty"`
	ProbeParam float64 `json:",omitempty"`
	// Params are the simulation parameters.
	Params Params
}

// NewCell returns a cell with the default Byzantine derivation
// (NumByz = -1, i.e. ⌊ByzFraction·Clients⌋).
func NewCell(dataset, rule, attack string, p Params) Cell {
	return Cell{Dataset: dataset, Rule: rule, Attack: attack, NumByz: -1, Params: p}
}

// EffectiveByz returns the Byzantine client count the cell trains with.
func (c Cell) EffectiveByz() int {
	if c.NumByz >= 0 {
		return c.NumByz
	}
	return c.Params.NumByz()
}

// ID renders a human-readable identifier, the target of the CLI's -filter
// flag. It is descriptive, not unique — Key is the unique identity.
func (c Cell) ID() string {
	return c.id(true)
}

// GroupID is ID without the seed suffix: the identity shared by a cell's
// seed replicas, under which seed-group statistics are aggregated.
func (c Cell) GroupID() string {
	return c.id(false)
}

func (c Cell) id(withSeed bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s", c.Dataset, c.Rule, c.Attack)
	if c.AttackParam != 0 {
		fmt.Fprintf(&b, "@%g", c.AttackParam)
	}
	if len(c.RuleHyper) > 0 {
		b.WriteString("/hyp=")
		b.WriteString(formatHyper(c.RuleHyper, ","))
	}
	if c.NumByz >= 0 {
		fmt.Fprintf(&b, "/byz=%d", c.NumByz)
	}
	if c.Participation != "" && c.Participation != ParticipationFull {
		fmt.Fprintf(&b, "/part=%s", c.Participation)
		if c.SampleK > 0 {
			fmt.Fprintf(&b, ":%d", c.SampleK)
		}
	}
	if c.NonIIDS > 0 {
		fmt.Fprintf(&b, "/niid=%g", c.NonIIDS)
	}
	if c.BatchClients {
		b.WriteString("/batched")
		if c.FastLocal {
			b.WriteString("-fast")
		}
	}
	if c.Codec != "" && c.Codec != CodecIdentity {
		fmt.Fprintf(&b, "/codec=%s", c.Codec)
		if len(c.CodecHyper) > 0 {
			b.WriteString(":")
			b.WriteString(formatHyper(c.CodecHyper, ","))
		}
	}
	if c.NonFinitePolicy != "" {
		fmt.Fprintf(&b, "/nonfinite=%s", c.NonFinitePolicy)
	}
	if c.Probe != "" {
		fmt.Fprintf(&b, "/probe=%s", c.Probe)
	}
	if withSeed {
		fmt.Fprintf(&b, "/seed=%d", c.Params.Seed)
	}
	return b.String()
}

// formatHyper renders a hyperparameter map as a stable sorted
// "name:value" list — the one definition shared by cell IDs and exports.
func formatHyper(h map[string]float64, sep string) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(sep)
		}
		fmt.Fprintf(&b, "%s:%g", k, h[k])
	}
	return b.String()
}

// Spec is a named campaign: the grid of cells one sweep evaluates.
type Spec struct {
	Name  string
	Cells []Cell
}

// Filter returns a copy of the spec keeping only cells whose ID contains
// substr (empty substr keeps everything).
func (s Spec) Filter(substr string) Spec {
	if substr == "" {
		return s
	}
	out := Spec{Name: s.Name}
	for _, c := range s.Cells {
		if strings.Contains(c.ID(), substr) {
			out.Cells = append(out.Cells, c)
		}
	}
	return out
}

// Merge concatenates several specs into one named campaign.
func Merge(name string, specs ...Spec) Spec {
	out := Spec{Name: name}
	for _, s := range specs {
		out.Cells = append(out.Cells, s.Cells...)
	}
	return out
}

// EffectiveCohort returns the number of gradients submitted per round:
// SampleK under uniform subsampling, the full client count otherwise.
func (c Cell) EffectiveCohort() int {
	if c.Participation == ParticipationUniform && c.SampleK > 0 {
		return c.SampleK
	}
	return c.Params.Clients
}

// ApplyCodec returns a copy of the spec with the named codec (and its
// hyperparameters) stamped onto every cell — the grid-wide compression
// axis behind the -codec CLI flags. The codec is cell identity, so the
// stamped cells hash (and cache) separately from their uncompressed
// originals; an empty name returns the spec unchanged.
func ApplyCodec(s Spec, name string, hyper map[string]float64) Spec {
	if name == "" {
		return s
	}
	out := Spec{Name: s.Name, Cells: make([]Cell, len(s.Cells))}
	for i, c := range s.Cells {
		c.Codec = name
		// Clone per cell: a shared map pointer would let one cell's later
		// hyper mutation silently rewrite every cell (and the caller's map).
		c.CodecHyper = maps.Clone(hyper)
		out.Cells[i] = c
	}
	return out
}

// ApplyNonFinite returns a copy of the spec with the named non-finite
// ingest policy stamped onto every cell — the grid-wide hostile-input axis
// behind the -nonfinite-policy CLI flag. Like the codec, the policy is cell
// identity: stamped cells hash (and cache) separately from their legacy
// diverge-on-NaN originals; an empty name returns the spec unchanged.
func ApplyNonFinite(s Spec, policy string) Spec {
	if policy == "" {
		return s
	}
	out := Spec{Name: s.Name, Cells: make([]Cell, len(s.Cells))}
	for i, c := range s.Cells {
		c.NonFinitePolicy = policy
		out.Cells[i] = c
	}
	return out
}

// ReplicateSeeds expands every cell across the given seeds, producing the
// seed-replica grid the paper's run averaging assumes. The result keeps
// cell order grouped by the original grid (all seeds of cell 0, then cell
// 1, ...) so seed groups stay contiguous in exports. An empty seed list
// returns the spec unchanged.
func ReplicateSeeds(s Spec, seeds []int64) Spec {
	if len(seeds) == 0 {
		return s
	}
	out := Spec{Name: s.Name, Cells: make([]Cell, 0, len(s.Cells)*len(seeds))}
	for _, c := range s.Cells {
		for _, seed := range seeds {
			r := c
			r.Params.Seed = seed
			out.Cells = append(out.Cells, r)
		}
	}
	return out
}
