package campaign_test

import (
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// TestCodecAxisKeepsHistoricalHashes pins the cache-compatibility contract
// of the compression axis: a cell that does not use it hashes exactly as
// before the fields existed, and the documented-equivalent spellings "" and
// "identity" share one identity.
func TestCodecAxisKeepsHistoricalHashes(t *testing.T) {
	base := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	zero := base
	zero.Codec = ""
	zero.CodecHyper = nil
	k2, err := zero.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("zero-valued codec fields changed the cell hash")
	}
	// The identity codec round trip is byte-identical to no codec at all,
	// so the explicit spelling must share the cache entry.
	ident := base
	ident.Codec = campaign.CodecIdentity
	kIdent, err := ident.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kIdent != k1 {
		t.Fatal(`Codec "identity" hashes differently from ""`)
	}
	// Lossy codecs and their hyperparameters ARE identity.
	topk := base
	topk.Codec = "topk"
	kTopk, _ := topk.Key()
	topkK := topk
	topkK.CodecHyper = map[string]float64{"k": 16}
	kTopkK, _ := topkK.Key()
	if kTopk == k1 || kTopkK == k1 || kTopk == kTopkK {
		t.Fatal("codec fields not part of the cell identity")
	}
}

func TestCodecAxisID(t *testing.T) {
	c := campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	if strings.Contains(c.ID(), "codec") {
		t.Errorf("codec-free cell ID %q mentions a codec", c.ID())
	}
	c.Codec = "topk"
	c.CodecHyper = map[string]float64{"k": 16}
	if !strings.Contains(c.ID(), "codec=topk:k:16") {
		t.Errorf("cell ID %q does not render the codec axis", c.ID())
	}
	// Identity is the default spelling: not rendered, matching Key.
	c = campaign.NewCell("tiny", "Mean", "LIE", tinyParams(1))
	c.Codec = campaign.CodecIdentity
	if strings.Contains(c.ID(), "codec") {
		t.Errorf("identity-codec cell ID %q renders the default", c.ID())
	}
}

// TestCodecCellsThroughEngine runs the compression axis end to end: the
// codec changes results and bytes shipped, and execution stays
// deterministic across engine worker counts.
func TestCodecCellsThroughEngine(t *testing.T) {
	spec := campaign.Spec{Name: "codecs"}
	for _, cdc := range []string{"identity", "topk", "signsgd"} {
		c := campaign.NewCell("tiny", "SignGuard", "LIE", tinyParams(1))
		c.Codec = cdc
		if cdc == "topk" {
			c.CodecHyper = map[string]float64{"k": 20}
		}
		spec.Cells = append(spec.Cells, c)
	}
	e := &campaign.Engine{Registry: testRegistry(), Workers: 2}
	rep := mustRun(t, e, spec)
	h := resultHashes(t, rep)
	if h[0] == h[1] || h[0] == h[2] || h[1] == h[2] {
		t.Error("codec axis had no effect on results")
	}
	for i, r := range rep.Results {
		if r.WireBytes <= 0 {
			t.Errorf("cell %d (%s): no wire-bytes accounting", i, r.Cell.ID())
		}
	}
	ident, topk, sign := rep.Results[0], rep.Results[1], rep.Results[2]
	if topk.WireBytes >= ident.WireBytes {
		t.Errorf("topk shipped %d bytes, identity %d", topk.WireBytes, ident.WireBytes)
	}
	if sign.WireBytes >= topk.WireBytes {
		t.Errorf("signsgd shipped %d bytes, topk %d", sign.WireBytes, topk.WireBytes)
	}

	// Determinism across engine and simulation worker counts: the lossy
	// codecs draw only from the codec stage's own sequential RNG stream.
	for _, workers := range []int{1, 4} {
		rep2 := mustRun(t, &campaign.Engine{Registry: testRegistry(), Workers: workers, SimWorkers: workers + 1}, spec)
		h2 := resultHashes(t, rep2)
		for i := range h {
			if h[i] != h2[i] {
				t.Fatalf("workers=%d: codec cell %d not deterministic", workers, i)
			}
		}
	}
}

func TestValidateRejectsBadCodec(t *testing.T) {
	reg := testRegistry()
	p := tinyParams(1)

	bad := campaign.NewCell("tiny", "Mean", "LIE", p)
	bad.Codec = "gzip"
	if err := reg.Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{bad}}); err == nil ||
		!strings.Contains(err.Error(), "gzip") {
		t.Errorf("unknown codec passed validation: %v", err)
	}

	badHyper := campaign.NewCell("tiny", "Mean", "LIE", p)
	badHyper.Codec = "topk"
	badHyper.CodecHyper = map[string]float64{"levels": 4}
	if err := reg.Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{badHyper}}); err == nil ||
		!strings.Contains(err.Error(), "levels") {
		t.Errorf("undeclared codec hyperparameter passed validation: %v", err)
	}

	stray := campaign.NewCell("tiny", "Mean", "LIE", p)
	stray.CodecHyper = map[string]float64{"k": 8} // without a codec name
	if err := reg.Validate(campaign.Spec{Name: "x", Cells: []campaign.Cell{stray}}); err == nil {
		t.Error("CodecHyper without a Codec passed validation")
	}
}

// TestApplyCodec: the grid-wide stamping helper behind the -codec flags.
func TestApplyCodec(t *testing.T) {
	spec := testSpec()
	stamped := campaign.ApplyCodec(spec, "qsgd", map[string]float64{"levels": 8})
	if len(stamped.Cells) != len(spec.Cells) {
		t.Fatalf("stamped %d cells, want %d", len(stamped.Cells), len(spec.Cells))
	}
	for i, c := range stamped.Cells {
		if c.Codec != "qsgd" || c.CodecHyper["levels"] != 8 {
			t.Fatalf("cell %d not stamped: %+v", i, c)
		}
		if spec.Cells[i].Codec != "" {
			t.Fatal("ApplyCodec mutated the input spec")
		}
	}
	// Each cell owns its hyper map: mutating one cell's (or the caller's
	// original map) must not leak into any other cell.
	hyper := map[string]float64{"levels": 8}
	stamped = campaign.ApplyCodec(spec, "qsgd", hyper)
	hyper["levels"] = 99
	stamped.Cells[0].CodecHyper["levels"] = 4
	if got := stamped.Cells[1].CodecHyper["levels"]; got != 8 {
		t.Fatalf("cell 1 hyper = %v, shared map leaked across cells/caller", got)
	}

	same := campaign.ApplyCodec(spec, "", nil)
	for i := range same.Cells {
		if same.Cells[i].Codec != "" {
			t.Fatalf("empty name stamped cell %d", i)
		}
	}

	// The engine-level form: Engine.Codec stamps before hashing, so the
	// report's cells carry the axis.
	e := &campaign.Engine{Registry: testRegistry(), Codec: "signsgd"}
	rep := mustRun(t, e, campaign.Spec{Name: "stamped", Cells: []campaign.Cell{
		campaign.NewCell("tiny", "Mean", "NoAttack", tinyParams(1)),
	}})
	if rep.Results[0].Cell.Codec != "signsgd" {
		t.Errorf("Engine.Codec did not stamp the cell: %+v", rep.Results[0].Cell)
	}
}
