package campaign_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/signguard/signguard/internal/campaign"
)

// seedStore fills a fresh store with n hand-built results (real cell
// hashes, no training) and flushes its index. Returns the store directory
// and the keys in insertion order.
func seedStore(t *testing.T, n int) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, n)
	for i := range keys {
		c := campaign.NewCell("tiny", "Mean", "SignFlip", tinyParams(int64(100+i)))
		key, err := c.Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = key
		res := &campaign.CellResult{Key: key, Cell: c, BestAccuracy: float64(i), DurationMS: int64(i + 1)}
		if err := store.Put(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	return dir, keys
}

// corruptIndexVariants covers the ways a crash or a stray editor can break
// index.json: invalid JSON, a truncated document, and an empty file.
var corruptIndexVariants = map[string]func([]byte) []byte{
	"garbage":   func([]byte) []byte { return []byte("{not json at all") },
	"truncated": func(raw []byte) []byte { return raw[:len(raw)/2] },
	"empty":     func([]byte) []byte { return nil },
}

// TestIndexRebuildAfterCorruption: whatever happened to index.json, a fresh
// store must answer membership correctly by rebuilding from the per-cell
// result files — and must heal the index file on disk while doing so.
func TestIndexRebuildAfterCorruption(t *testing.T) {
	for name, corrupt := range corruptIndexVariants {
		t.Run(name, func(t *testing.T) {
			dir, keys := seedStore(t, 3)
			idxPath := filepath.Join(dir, "index.json")
			raw, err := os.ReadFile(idxPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(idxPath, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			store, err := campaign.OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, key := range keys {
				if !store.Contains(key) {
					t.Errorf("rebuilt index lost key %s", key)
				}
			}
			if store.Contains("not-a-key") {
				t.Error("rebuilt index invented a key")
			}
			idx, err := store.Index()
			if err != nil {
				t.Fatal(err)
			}
			if len(idx) != len(keys) {
				t.Fatalf("rebuilt index holds %d entries, want %d", len(idx), len(keys))
			}
			for _, ent := range idx {
				if ent.ID == "" {
					t.Error("rebuilt entry lost its cell ID")
				}
			}

			// The rebuild must have healed the on-disk file: a brand-new
			// store (no rebuild needed) reads the same membership.
			healed, err := os.ReadFile(idxPath)
			if err != nil {
				t.Fatal(err)
			}
			var doc struct {
				Cells map[string]campaign.IndexEntry
			}
			if err := json.Unmarshal(healed, &doc); err != nil {
				t.Fatalf("healed index is not valid JSON: %v", err)
			}
			if len(doc.Cells) != len(keys) {
				t.Errorf("healed index lists %d cells, want %d", len(doc.Cells), len(keys))
			}
		})
	}
}

// TestIndexRebuildAfterDrift: results written or deleted behind the index's
// back (another process, manual rm) are detected by the key-set comparison
// and force a rebuild.
func TestIndexRebuildAfterDrift(t *testing.T) {
	dir, keys := seedStore(t, 2)

	// Delete one result file without touching the index.
	if err := os.Remove(filepath.Join(dir, keys[0]+".json")); err != nil {
		t.Fatal(err)
	}
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Contains(keys[0]) {
		t.Error("index still lists an out-of-band-deleted result")
	}
	if !store.Contains(keys[1]) {
		t.Error("surviving result lost in the rebuild")
	}
}

// TestIndexAbsentRebuild: a store directory predating the index (or whose
// index was deleted) rebuilds silently.
func TestIndexAbsentRebuild(t *testing.T) {
	dir, keys := seedStore(t, 2)
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	store, err := campaign.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		if !store.Contains(key) {
			t.Errorf("missing-index rebuild lost key %s", key)
		}
	}
}
