package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"
)

// GradientFunc computes the gradient a client submits for a round, given
// the broadcast global parameters. Honest clients return a local stochastic
// gradient; Byzantine clients may return anything (the cmd/flclient binary
// wires local attack behaviours here).
type GradientFunc func(round int, params []float64) ([]float64, error)

// ClientConfig describes one federated participant.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// ID is a logging identifier sent in the Hello message.
	ID string
	// Compute produces the gradient for each round (required).
	Compute GradientFunc
	// DialTimeout bounds the connection attempt (default 10s).
	DialTimeout time.Duration
	// OnModel, when non-nil, observes every broadcast (including the final
	// Done message) — used to track convergence client-side.
	OnModel func(ModelUpdate)
}

// RunClient connects to the server and participates until the server
// signals completion or the context is cancelled. It returns the final
// model parameters.
func RunClient(ctx context.Context, cfg ClientConfig) ([]float64, error) {
	if cfg.Compute == nil {
		return nil, errors.New("transport: ClientConfig.Compute is required")
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", cfg.Addr, err)
	}
	defer conn.Close()

	// Close the connection when the context is cancelled so blocked reads
	// unblock; the stop channel releases the watcher goroutine on normal
	// return (stop must be closed before waiting for the watcher).
	stop := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	defer func() {
		close(stop)
		<-watchDone
	}()

	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&Hello{ClientID: cfg.ID}); err != nil {
		return nil, fmt.Errorf("transport: sending hello: %w", err)
	}

	for {
		var update ModelUpdate
		if err := dec.Decode(&update); err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("transport: cancelled: %w", ctx.Err())
			}
			return nil, fmt.Errorf("transport: reading model update: %w", err)
		}
		if cfg.OnModel != nil {
			cfg.OnModel(update)
		}
		if update.Done {
			return update.Params, nil
		}
		grad, err := cfg.Compute(update.Round, update.Params)
		if err != nil {
			return nil, fmt.Errorf("transport: computing gradient for round %d: %w", update.Round, err)
		}
		if err := enc.Encode(&GradientUpload{Round: update.Round, Grad: grad}); err != nil {
			return nil, fmt.Errorf("transport: uploading gradient: %w", err)
		}
	}
}
