package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"slices"
	"strings"
	"time"

	"github.com/signguard/signguard/internal/asyncfl"
	"github.com/signguard/signguard/internal/codec"
)

// maxAsyncBody bounds an update upload; flat gradients of the models here
// are a few hundred KB of JSON at most, so this is generous headroom.
const maxAsyncBody = 64 << 20

// NewAsyncHandler mounts the non-blocking submit/fetch protocol over the
// buffered asynchronous aggregator: clients fetch the versioned model and
// submit gradients whenever they finish computing, with no round barrier —
// the HTTP face of internal/asyncfl, sharing nothing with the synchronous
// gob protocol except the package. Every builtin compression codec is
// accepted on submit; use NewAsyncCodecHandler to narrow the list.
func NewAsyncHandler(agg *asyncfl.Aggregator) http.Handler {
	h, err := NewAsyncCodecHandler(agg, nil)
	if err != nil {
		panic(err) // unreachable: a nil accepted list is always valid
	}
	return h
}

// NewAsyncCodecHandler is NewAsyncHandler with an explicit accepted-codec
// policy: accepted lists the internal/codec registry names the server
// advertises in model fetches and decodes on submit (nil = all builtin).
// Encoded submits naming any other codec are refused, so a fleet can be
// held to, say, topk-only traffic.
func NewAsyncCodecHandler(agg *asyncfl.Aggregator, accepted []string) (http.Handler, error) {
	reg := codec.Builtin()
	if accepted == nil {
		accepted = reg.Names()
	}
	acceptSet := make(map[string]bool, len(accepted))
	for _, name := range accepted {
		if !reg.Has(name) {
			return nil, fmt.Errorf("transport: unknown codec %q in accepted list (registry has %v)", name, reg.Names())
		}
		acceptSet[name] = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+AsyncPathModel, func(w http.ResponseWriter, _ *http.Request) {
		version, params, done := agg.Model()
		asyncWriteJSON(w, AsyncModelResponse{Version: version, Params: params, Codecs: accepted, Done: done})
	})
	mux.HandleFunc("POST "+AsyncPathUpdate, func(w http.ResponseWriter, r *http.Request) {
		var req AsyncSubmitRequest
		if !asyncReadJSON(w, r, maxAsyncBody, &req) {
			return
		}
		if req.Client == "" {
			http.Error(w, "update requires a Client id", http.StatusBadRequest)
			return
		}
		grad, wireBytes := req.Grad, 0
		switch {
		case req.Encoded != nil && len(req.Grad) > 0:
			http.Error(w, "update carries both Grad and Encoded", http.StatusBadRequest)
			return
		case req.Encoded != nil:
			if req.Codec != "" && req.Codec != req.Encoded.Codec {
				http.Error(w, fmt.Sprintf("declared codec %q does not match payload codec %q",
					req.Codec, req.Encoded.Codec), http.StatusBadRequest)
				return
			}
			if !acceptSet[req.Encoded.Codec] {
				http.Error(w, fmt.Sprintf("codec %q not accepted (server accepts %v)",
					req.Encoded.Codec, accepted), http.StatusBadRequest)
				return
			}
			// Bound the declared dimension before decoding: Decode
			// allocates Dim-sized buffers, and Dim is attacker-controlled
			// wire input — a dimension the aggregator would reject anyway
			// must not drive an allocation first.
			if want := agg.Dim(); req.Encoded.Dim != want {
				http.Error(w, fmt.Sprintf("encoded payload declares dim %d, want %d",
					req.Encoded.Dim, want), http.StatusBadRequest)
				return
			}
			var err error
			grad, err = reg.Decode(*req.Encoded)
			if err != nil {
				if errors.Is(err, codec.ErrNonFinite) {
					// JSON cannot carry a literal NaN, so a payload that
					// decodes to — or amplifies to — a non-finite gradient is
					// the wire-level shape of the non-finite attack. Account
					// it on the aggregator's counters before refusing.
					agg.NoteNonFiniteReject(req.Client)
				}
				http.Error(w, fmt.Sprintf("decoding %s payload: %v", req.Encoded.Codec, err), http.StatusBadRequest)
				return
			}
			wireBytes = req.Encoded.Bytes()
		case req.Codec != "":
			http.Error(w, fmt.Sprintf("codec %q declared without an Encoded payload", req.Codec), http.StatusBadRequest)
			return
		}
		res, err := agg.Submit(asyncfl.Update{
			Client:    req.Client,
			Version:   req.Version,
			Seq:       req.Seq,
			Grad:      grad,
			WireBytes: wireBytes,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		asyncWriteJSON(w, res)
	})
	mux.HandleFunc("POST "+AsyncPathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req AsyncHeartbeatRequest
		if !asyncReadJSON(w, r, 1<<20, &req) {
			return
		}
		if req.Client == "" {
			http.Error(w, "heartbeat requires a Client id", http.StatusBadRequest)
			return
		}
		version, done := agg.Heartbeat(req.Client)
		asyncWriteJSON(w, AsyncHeartbeatResponse{Version: version, Done: done})
	})
	mux.HandleFunc("GET "+AsyncPathStats, func(w http.ResponseWriter, _ *http.Request) {
		asyncWriteJSON(w, agg.Stats())
	})
	return mux, nil
}

func asyncWriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func asyncReadJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	if dec.More() {
		http.Error(w, "bad request body: trailing data after JSON value", http.StatusBadRequest)
		return false
	}
	return true
}

// AsyncClient is a client of the asynchronous protocol. The zero HTTP
// field uses http.DefaultClient; load harnesses share one pooled client
// across many sessions so sockets are reused.
type AsyncClient struct {
	// Base is the server address: "host:port" or a full http:// URL.
	Base string
	// ID identifies this session in every request.
	ID string
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *AsyncClient) url(path string) string {
	base := c.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimSuffix(base, "/") + path
}

func (c *AsyncClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Model fetches the current global model.
func (c *AsyncClient) Model(ctx context.Context) (AsyncModelResponse, error) {
	var out AsyncModelResponse
	err := c.call(ctx, http.MethodGet, AsyncPathModel, nil, &out)
	return out, err
}

// Submit uploads one gradient computed against the given model version and
// returns the server's backpressure/staleness signals.
func (c *AsyncClient) Submit(ctx context.Context, version int, seq int64, grad []float64) (asyncfl.SubmitResult, error) {
	var out asyncfl.SubmitResult
	req := AsyncSubmitRequest{Client: c.ID, Version: version, Seq: seq, Grad: grad}
	err := c.call(ctx, http.MethodPost, AsyncPathUpdate, &req, &out)
	return out, err
}

// SubmitEncoded uploads one compressed gradient. The server must accept
// the payload's codec (see AsyncModelResponse.Codecs) or the submit fails.
func (c *AsyncClient) SubmitEncoded(ctx context.Context, version int, seq int64, enc codec.Encoded) (asyncfl.SubmitResult, error) {
	var out asyncfl.SubmitResult
	req := AsyncSubmitRequest{Client: c.ID, Version: version, Seq: seq, Codec: enc.Codec, Encoded: &enc}
	err := c.call(ctx, http.MethodPost, AsyncPathUpdate, &req, &out)
	return out, err
}

// Heartbeat renews this session's liveness lease without submitting.
func (c *AsyncClient) Heartbeat(ctx context.Context) (AsyncHeartbeatResponse, error) {
	var out AsyncHeartbeatResponse
	err := c.call(ctx, http.MethodPost, AsyncPathHeartbeat, &AsyncHeartbeatRequest{Client: c.ID}, &out)
	return out, err
}

// Stats fetches the server's aggregator counters.
func (c *AsyncClient) Stats(ctx context.Context) (asyncfl.Stats, error) {
	var out asyncfl.Stats
	err := c.call(ctx, http.MethodGet, AsyncPathStats, nil, &out)
	return out, err
}

// call performs one JSON request/response exchange.
func (c *AsyncClient) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("transport: encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return fmt.Errorf("transport: building %s request: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("transport: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("transport: %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("transport: decoding %s response: %w", path, err)
	}
	return nil
}

// AsyncClientConfig describes one asynchronous participant loop.
type AsyncClientConfig struct {
	// Addr is the server address ("host:port" or http:// URL).
	Addr string
	// ID identifies the session.
	ID string
	// Compute produces the gradient for each fetched model; its round
	// argument receives the model version (required).
	Compute GradientFunc
	// MaxUpdates stops after that many accepted submissions (0 = run
	// until the server reports Done).
	MaxUpdates int
	// Codec, when non-nil, compresses every submission through this wire
	// format. The server must advertise the codec's registry name
	// (AsyncModelResponse.Codecs) or the client fails fast on the first
	// fetch rather than ship payloads the server cannot decode.
	Codec codec.Codec
	// Rng feeds stochastic codecs (qsgd); required when Codec uses
	// randomness, unused otherwise.
	Rng *rand.Rand
	// OnModel, when non-nil, observes every fetched model.
	OnModel func(AsyncModelResponse)
	// RetryDelay spaces out the refetch after a refused submit (TooStale,
	// version-rejected, ...) so a persistently-refused client does not
	// hot-loop against the server (0 = DefaultAsyncRetryDelay; negative
	// disables the delay).
	RetryDelay time.Duration
	// HTTP is the underlying client (nil = http.DefaultClient).
	HTTP *http.Client
}

// DefaultAsyncRetryDelay is the refused-submit backoff when
// AsyncClientConfig.RetryDelay is zero.
const DefaultAsyncRetryDelay = 50 * time.Millisecond

// RunAsyncClient joins an asynchronous training session: it repeatedly
// fetches the versioned model, computes a gradient against it, and submits
// — no waiting on other clients. It returns the latest fetched parameters
// when the server reports Done, MaxUpdates is reached, or ctx is
// cancelled.
func RunAsyncClient(ctx context.Context, cfg AsyncClientConfig) ([]float64, error) {
	if cfg.Compute == nil {
		return nil, fmt.Errorf("transport: AsyncClientConfig.Compute is required")
	}
	c := &AsyncClient{Base: cfg.Addr, ID: cfg.ID, HTTP: cfg.HTTP}
	var params []float64
	checkedCodec := cfg.Codec == nil
	for submitted := 0; ; {
		if err := ctx.Err(); err != nil {
			return params, fmt.Errorf("transport: cancelled: %w", err)
		}
		model, err := c.Model(ctx)
		if err != nil {
			return params, err
		}
		params = model.Params
		if cfg.OnModel != nil {
			cfg.OnModel(model)
		}
		if model.Done {
			return params, nil
		}
		grad, err := cfg.Compute(model.Version, model.Params)
		if err != nil {
			return params, fmt.Errorf("transport: computing gradient for version %d: %w", model.Version, err)
		}
		var res asyncfl.SubmitResult
		if cfg.Codec == nil {
			res, err = c.Submit(ctx, model.Version, 0, grad)
		} else {
			enc, encErr := cfg.Codec.Encode(grad, cfg.Rng)
			if encErr != nil {
				return params, fmt.Errorf("transport: codec %s encode: %w", cfg.Codec.Name(), encErr)
			}
			if !checkedCodec {
				// Fail fast on the first submit: a server that does not
				// advertise the codec would reject every upload anyway.
				if !slices.Contains(model.Codecs, enc.Codec) {
					return params, fmt.Errorf("transport: server does not accept codec %q (advertises %v)", enc.Codec, model.Codecs)
				}
				checkedCodec = true
			}
			res, err = c.SubmitEncoded(ctx, model.Version, 0, enc)
		}
		if err != nil {
			return params, err
		}
		if res.Done {
			// Fetch the final model once more so the caller gets it.
			final, err := c.Model(ctx)
			if err != nil {
				return params, err
			}
			return final.Params, nil
		}
		if res.Accepted {
			submitted++
			if cfg.MaxUpdates > 0 && submitted >= cfg.MaxUpdates {
				return params, nil
			}
		} else if !res.Held {
			// Refused (too stale, future-versioned, ...): the very next
			// fetch/compute/submit would likely be refused for the same
			// reason, so back off instead of hammering the server the
			// backpressure signals are trying to protect.
			delay := cfg.RetryDelay
			if delay == 0 {
				delay = DefaultAsyncRetryDelay
			}
			if delay > 0 {
				select {
				case <-ctx.Done():
					return params, fmt.Errorf("transport: cancelled: %w", ctx.Err())
				case <-time.After(delay):
				}
			}
		}
	}
}
