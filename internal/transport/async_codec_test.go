package transport

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/asyncfl"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/tensor"
)

// TestAsyncEncodedSubmit covers the versioned encoded-update payload: the
// server advertises its accepted codecs on fetch, decodes encoded submits
// through the registry, and accounts their wire size — and an
// identity-encoded submit steps the model exactly like the raw form.
func TestAsyncEncodedSubmit(t *testing.T) {
	cfg := asyncfl.Config{
		InitialParams: []float64{4, -3, 2, -1, 0.5, 8},
		K:             1,
		LR:            0.5,
		SessionTTL:    -1,
	}
	ctx := context.Background()
	grad := []float64{1, -2, 0.25, -0.125, 3, -4}

	// Raw submit on one server, identity-encoded on another: the decoded
	// gradient is bit-identical, so the stepped models must match exactly.
	aggRaw, srvRaw := newAsyncTestServer(t, cfg)
	cRaw := &AsyncClient{Base: srvRaw.URL, ID: "raw"}
	if res, err := cRaw.Submit(ctx, 0, 0, grad); err != nil || !res.Accepted || !res.Stepped {
		t.Fatalf("raw submit: res=%+v err=%v", res, err)
	}

	aggEnc, srvEnc := newAsyncTestServer(t, cfg)
	cEnc := &AsyncClient{Base: srvEnc.URL, ID: "enc"}
	model, err := cEnc.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := codec.Builtin().Names()
	if len(model.Codecs) != len(want) {
		t.Fatalf("server advertises %v, want %v", model.Codecs, want)
	}
	enc, err := codec.IdentityCodec{}.Encode(grad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := cEnc.SubmitEncoded(ctx, 0, 0, enc); err != nil || !res.Accepted || !res.Stepped {
		t.Fatalf("encoded submit: res=%+v err=%v", res, err)
	}

	_, pRaw, _ := aggRaw.Model()
	_, pEnc, _ := aggEnc.Model()
	for i := range pRaw {
		if pRaw[i] != pEnc[i] {
			t.Fatalf("param %d: raw %v != encoded %v", i, pRaw[i], pEnc[i])
		}
	}
	if got := aggEnc.Stats().IngestBytes; got != int64(enc.Bytes()) {
		t.Errorf("ingest bytes %d, want %d", got, enc.Bytes())
	}
	// The raw path falls back to dense accounting.
	if got := aggRaw.Stats().IngestBytes; got != int64(8*len(grad)) {
		t.Errorf("raw ingest bytes %d, want dense %d", got, 8*len(grad))
	}

	// A lossy codec ships measurably less than dense.
	encTopk, err := (codec.TopKCodec{K: 2}).Encode(grad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if encTopk.Bytes() >= enc.Bytes() {
		t.Fatalf("topk wire size %d not below dense %d", encTopk.Bytes(), enc.Bytes())
	}
	before := aggEnc.Stats().IngestBytes
	if res, err := cEnc.SubmitEncoded(ctx, 1, 0, encTopk); err != nil || !res.Accepted {
		t.Fatalf("topk submit: res=%+v err=%v", res, err)
	}
	if got := aggEnc.Stats().IngestBytes - before; got != int64(encTopk.Bytes()) {
		t.Errorf("topk ingest bytes %d, want %d", got, encTopk.Bytes())
	}
}

// TestAsyncCodecPolicy covers the accepted-list gate and the malformed
// submit rejections.
func TestAsyncCodecPolicy(t *testing.T) {
	agg, err := asyncfl.New(asyncfl.Config{
		InitialParams: make([]float64, 4), K: 2, LR: 0.1, SessionTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAsyncCodecHandler(agg, []string{"gzip"}); err == nil ||
		!strings.Contains(err.Error(), "gzip") {
		t.Fatalf("unknown accepted codec not refused: %v", err)
	}
	h, err := NewAsyncCodecHandler(agg, []string{codec.Identity, codec.TopK})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	ctx := context.Background()
	c := &AsyncClient{Base: srv.URL, ID: "c"}

	model, err := c.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Codecs) != 2 || model.Codecs[0] != codec.Identity || model.Codecs[1] != codec.TopK {
		t.Fatalf("advertised %v, want [identity topk]", model.Codecs)
	}

	grad := []float64{1, 2, 3, 4}
	encSign, err := codec.SignSGDCodec{}.Encode(grad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitEncoded(ctx, 0, 0, encSign); err == nil ||
		!strings.Contains(err.Error(), "not accepted") {
		t.Fatalf("unadvertised codec not rejected: %v", err)
	}

	enc, err := (codec.TopKCodec{K: 2}).Encode(grad, nil)
	if err != nil {
		t.Fatal(err)
	}
	post := func(req AsyncSubmitRequest) error {
		var out asyncfl.SubmitResult
		return c.call(ctx, "POST", AsyncPathUpdate, &req, &out)
	}
	if err := post(AsyncSubmitRequest{Client: "c", Codec: codec.QSGD, Encoded: &enc}); err == nil ||
		!strings.Contains(err.Error(), "does not match") {
		t.Fatalf("declared/payload codec mismatch not rejected: %v", err)
	}
	if err := post(AsyncSubmitRequest{Client: "c", Grad: grad, Encoded: &enc}); err == nil ||
		!strings.Contains(err.Error(), "both") {
		t.Fatalf("Grad+Encoded not rejected: %v", err)
	}
	if err := post(AsyncSubmitRequest{Client: "c", Codec: codec.TopK}); err == nil ||
		!strings.Contains(err.Error(), "without an Encoded") {
		t.Fatalf("codec without payload not rejected: %v", err)
	}
	corrupt := enc
	corrupt.Idx = []int32{99, 1}
	if err := post(AsyncSubmitRequest{Client: "c", Encoded: &corrupt}); err == nil ||
		!strings.Contains(err.Error(), "decoding") {
		t.Fatalf("corrupt payload not rejected: %v", err)
	}
	// A declared dimension that disagrees with the model is refused before
	// decode runs: Dim sizes the decode allocation, so a hostile payload
	// claiming a gigantic (or negative) dimension must never reach it.
	for _, dim := range []int{1 << 30, -1, 3} {
		huge := codec.Encoded{Codec: codec.TopK, Dim: dim}
		if err := post(AsyncSubmitRequest{Client: "c", Encoded: &huge}); err == nil ||
			!strings.Contains(err.Error(), "declares dim") {
			t.Fatalf("dim %d payload not rejected pre-decode: %v", dim, err)
		}
	}
	// The valid form still lands.
	if res, err := c.SubmitEncoded(ctx, 0, 0, enc); err != nil || !res.Accepted {
		t.Fatalf("valid topk submit failed: res=%+v err=%v", res, err)
	}
}

// TestRunAsyncClientCodec covers the client-loop codec path: encoded
// submissions drive training to Done, and a client whose codec the server
// does not advertise fails fast on its first submit.
func TestRunAsyncClientCodec(t *testing.T) {
	init := make([]float64, 8)
	for i := range init {
		init[i] = 3
	}
	agg, srv := newAsyncTestServer(t, asyncfl.Config{
		InitialParams: init,
		K:             2,
		LR:            0.2,
		TargetSteps:   10,
		SessionTTL:    -1,
	})
	_, err := RunAsyncClient(context.Background(), AsyncClientConfig{
		Addr:    srv.URL,
		ID:      "qsgd-client",
		Compute: quadCompute(0),
		Codec:   codec.QSGDCodec{Levels: 8},
		Rng:     tensor.NewRNG(1),
	})
	if err != nil {
		t.Fatalf("codec client: %v", err)
	}
	st := agg.Stats()
	if st.Steps != 10 || !st.Done {
		t.Fatalf("training did not finish: %+v", st)
	}
	dense := int64(8 * len(init) * int(st.Arrivals))
	if st.IngestBytes <= 0 || st.IngestBytes >= dense {
		t.Errorf("qsgd ingest bytes %d not below dense %d", st.IngestBytes, dense)
	}

	// Identity-only server: a topk client must fail before submitting.
	aggNarrow, err := asyncfl.New(asyncfl.Config{
		InitialParams: init, K: 2, LR: 0.2, SessionTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewAsyncCodecHandler(aggNarrow, []string{codec.Identity})
	if err != nil {
		t.Fatal(err)
	}
	narrow := httptest.NewServer(h)
	defer narrow.Close()
	_, err = RunAsyncClient(context.Background(), AsyncClientConfig{
		Addr:    narrow.URL,
		ID:      "topk-client",
		Compute: quadCompute(0),
		Codec:   codec.TopKCodec{K: 2},
	})
	if err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Fatalf("mismatched codec did not fail fast: %v", err)
	}
	if st := aggNarrow.Stats(); st.Arrivals != 0 {
		t.Errorf("fail-fast client still landed %d updates", st.Arrivals)
	}
}
