// Package transport implements the federated-learning protocol of Fig. 1
// over a real network boundary: a parameter server that coordinates
// synchronous rounds with n TCP clients, exchanging gob-encoded messages.
// The in-process engine (internal/fl) and this transport implement the same
// round structure; the transport exists to demonstrate — and test — the
// system as an actual distributed deployment (cmd/flserver, cmd/flclient).
package transport

// Hello is the first message a client sends after connecting.
type Hello struct {
	// ClientID is a caller-chosen identifier used only for logging; the
	// aggregation itself treats gradients as anonymous, matching the
	// paper's threat model.
	ClientID string
}

// ModelUpdate is broadcast by the server at the start of each round, and
// once more with Done=true when training completes.
type ModelUpdate struct {
	// Round is the 0-based round index.
	Round int
	// Params is the current flat global parameter vector.
	Params []float64
	// Done signals the end of training; Params then holds the final model.
	Done bool
}

// GradientUpload carries one client's gradient for a round.
type GradientUpload struct {
	// Round echoes the round index the gradient was computed for.
	Round int
	// Grad is the client's flat gradient vector (honest or malicious).
	Grad []float64
}
