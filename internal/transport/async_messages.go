package transport

import "github.com/signguard/signguard/internal/codec"

// The asynchronous protocol is versioned under /asyncfl/v1 so wire changes
// can coexist with deployed clients; the synchronous gob protocol
// (messages.go) is untouched and keeps working alongside it.
const (
	// AsyncPathModel serves the current model: GET → AsyncModelResponse.
	AsyncPathModel = "/asyncfl/v1/model"
	// AsyncPathUpdate ingests one gradient: POST AsyncSubmitRequest →
	// asyncfl.SubmitResult (the backpressure/staleness signals).
	AsyncPathUpdate = "/asyncfl/v1/update"
	// AsyncPathHeartbeat renews an idle client's liveness lease: POST
	// AsyncHeartbeatRequest → AsyncHeartbeatResponse.
	AsyncPathHeartbeat = "/asyncfl/v1/heartbeat"
	// AsyncPathStats exposes the aggregator counters: GET → asyncfl.Stats.
	AsyncPathStats = "/asyncfl/v1/stats"
)

// AsyncModelResponse is the server's answer to a model fetch.
type AsyncModelResponse struct {
	// Version is the model version; submits must echo it so the server
	// can compute staleness.
	Version int
	// Params is the flat global parameter vector.
	Params []float64
	// Codecs lists the compression codec names (internal/codec registry
	// names) this server accepts on submit. Absent on pre-codec servers:
	// clients configured with a codec must fail fast rather than ship
	// encoded payloads the server cannot decode.
	Codecs []string `json:",omitempty"`
	// Done reports training finished; Params then holds the final model.
	Done bool
}

// AsyncSubmitRequest carries one client gradient.
type AsyncSubmitRequest struct {
	// Client identifies the session (also renews its liveness lease).
	Client string
	// Version is the model version the gradient was computed against.
	Version int
	// Seq is the schedule position in deterministic mode (ignored
	// otherwise).
	Seq int64
	// Grad is the flat gradient vector of an uncompressed submit.
	// Exactly one of Grad and Encoded must be set.
	Grad []float64 `json:",omitempty"`
	// Codec names the compression codec Encoded was produced by (the
	// base registry name, matching Encoded.Codec). Optional — Encoded is
	// self-describing — but when set it must agree with the payload.
	Codec string `json:",omitempty"`
	// Encoded is the compressed form of the gradient; the server decodes
	// it through its codec registry and accounts its wire size.
	Encoded *codec.Encoded `json:",omitempty"`
}

// AsyncHeartbeatRequest renews a session without submitting.
type AsyncHeartbeatRequest struct {
	Client string
}

// AsyncHeartbeatResponse reports the server state to an idle client.
type AsyncHeartbeatResponse struct {
	Version int
	Done    bool
}
