package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/tensor"
)

// quadraticGradient returns a GradientFunc descending a convex quadratic
// with optimum at target: grad = params - target (plus optional noise).
func quadraticGradient(target []float64, noise float64, seed int64) GradientFunc {
	rng := tensor.NewRNG(seed)
	return func(round int, params []float64) ([]float64, error) {
		g := make([]float64, len(params))
		for j := range g {
			g[j] = params[j] - target[j] + noise*rng.NormFloat64()
		}
		return g, nil
	}
}

// byzantineGradient sends a hugely scaled reverse gradient.
func byzantineGradient(target []float64, seed int64) GradientFunc {
	honest := quadraticGradient(target, 0.01, seed)
	return func(round int, params []float64) ([]float64, error) {
		g, err := honest(round, params)
		if err != nil {
			return nil, err
		}
		tensor.ScaleInPlace(g, -40)
		return g, nil
	}
}

// runCluster spins up a server and n clients on localhost and waits for
// training to finish, returning the final parameters.
func runCluster(t *testing.T, rule aggregate.Rule, nHonest, nByz, rounds int, target []float64) []float64 {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr:          "127.0.0.1:0",
		Clients:       nHonest + nByz,
		Rounds:        rounds,
		Rule:          rule,
		InitialParams: make([]float64, len(target)),
		LR:            0.2,
		Momentum:      0.5,
		RoundTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	serveErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr <- srv.Serve(ctx)
	}()

	clientErrs := make(chan error, nHonest+nByz)
	for i := 0; i < nHonest; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr: addr, ID: fmt.Sprintf("honest-%d", i),
				Compute: quadraticGradient(target, 0.05, int64(i)),
			})
			clientErrs <- err
		}(i)
	}
	for i := 0; i < nByz; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr: addr, ID: fmt.Sprintf("byz-%d", i),
				Compute: byzantineGradient(target, int64(100+i)),
			})
			clientErrs <- err
		}(i)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	for i := 0; i < nHonest+nByz; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	return srv.FinalParams()
}

func TestClusterConvergesClean(t *testing.T) {
	target := []float64{1, -2, 3, 0.5}
	final := runCluster(t, aggregate.NewMean(), 6, 0, 60, target)
	d, _ := tensor.Distance(final, target)
	if d > 0.2 {
		t.Errorf("distance to optimum %v after clean training", d)
	}
}

func TestClusterSignGuardFiltersByzantine(t *testing.T) {
	target := []float64{2, 2, -1, 0, 1, -1}
	final := runCluster(t, core.NewPlain(1), 8, 2, 60, target)
	d, _ := tensor.Distance(final, target)
	if d > 0.5 {
		t.Errorf("SignGuard cluster ended %v from optimum", d)
	}
	// The same cluster with a plain mean is wrecked by the scaled attack.
	wrecked := runCluster(t, aggregate.NewMean(), 8, 2, 60, target)
	dw, _ := tensor.Distance(wrecked, target)
	if dw < d*2 {
		t.Errorf("plain mean (%v) should be far worse than SignGuard (%v)", dw, d)
	}
}

func TestServerConfigValidation(t *testing.T) {
	good := ServerConfig{
		Addr: "127.0.0.1:0", Clients: 1, Rounds: 1,
		Rule: aggregate.NewMean(), InitialParams: []float64{0}, LR: 0.1,
	}
	mods := []func(*ServerConfig){
		func(c *ServerConfig) { c.Clients = 0 },
		func(c *ServerConfig) { c.Rounds = 0 },
		func(c *ServerConfig) { c.Rule = nil },
		func(c *ServerConfig) { c.InitialParams = nil },
		func(c *ServerConfig) { c.LR = 0 },
	}
	for i, mod := range mods {
		cfg := good
		mod(&cfg)
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config mutation %d accepted", i)
		}
	}
	srv, err := NewServer(good)
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	srv.Close()
}

func TestClientRequiresCompute(t *testing.T) {
	if _, err := RunClient(context.Background(), ClientConfig{Addr: "127.0.0.1:1"}); err == nil {
		t.Error("accepted nil Compute")
	}
}

func TestClientDialFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := RunClient(ctx, ClientConfig{
		Addr: "127.0.0.1:1", ID: "x",
		Compute:     func(int, []float64) ([]float64, error) { return nil, nil },
		DialTimeout: 500 * time.Millisecond,
	})
	if err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestServerRejectsWrongDimension(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 1, Rounds: 3,
		Rule: aggregate.NewMean(), InitialParams: []float64{0, 0}, LR: 0.1,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	_, clientErr := RunClient(ctx, ClientConfig{
		Addr: srv.Addr().String(), ID: "bad",
		Compute: func(round int, params []float64) ([]float64, error) {
			return []float64{1, 2, 3}, nil // wrong dimension
		},
	})
	serveErr := <-done
	if serveErr == nil {
		t.Error("server accepted a wrong-dimension gradient")
	}
	_ = clientErr // the client may or may not see the reset first
}

func TestServerHistory(t *testing.T) {
	target := []float64{1}
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 2, Rounds: 5,
		Rule: aggregate.NewMean(), InitialParams: []float64{0}, LR: 0.5,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(ctx); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	var models int
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ID: fmt.Sprintf("c%d", i),
				Compute: quadraticGradient(target, 0, int64(i)),
				OnModel: func(u ModelUpdate) {
					if i == 0 && u.Done {
						models++
					}
				},
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := len(srv.History()); got != 5 {
		t.Errorf("history has %d rounds, want 5", got)
	}
	if models != 1 {
		t.Errorf("client saw %d final models", models)
	}
}
