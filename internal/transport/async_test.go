package transport

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/signguard/signguard/internal/asyncfl"
)

// newAsyncTestServer spins a real HTTP server over a fresh aggregator.
func newAsyncTestServer(t *testing.T, cfg asyncfl.Config) (*asyncfl.Aggregator, *httptest.Server) {
	t.Helper()
	agg, err := asyncfl.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAsyncHandler(agg))
	t.Cleanup(srv.Close)
	return agg, srv
}

// quadCompute descends params toward target: grad = params - target.
func quadCompute(target float64) GradientFunc {
	return func(_ int, params []float64) ([]float64, error) {
		g := make([]float64, len(params))
		for i, p := range params {
			g[i] = p - target
		}
		return g, nil
	}
}

func TestAsyncProtocolEndToEnd(t *testing.T) {
	dim := 6
	init := make([]float64, dim)
	for i := range init {
		init[i] = 5
	}
	agg, srv := newAsyncTestServer(t, asyncfl.Config{
		InitialParams: init,
		K:             4,
		Alpha:         0.5,
		LR:            0.2,
		TargetSteps:   25,
		SessionTTL:    -1,
	})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunAsyncClient(context.Background(), AsyncClientConfig{
				Addr:    srv.URL,
				ID:      fmt.Sprintf("client-%d", i),
				Compute: quadCompute(0),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	select {
	case <-agg.Done():
	default:
		t.Fatal("aggregator not done after clients exited")
	}
	version, params, done := agg.Model()
	if !done || version != 25 {
		t.Fatalf("version %d done %v, want 25 steps", version, done)
	}
	for j, p := range params {
		if math.Abs(p) >= 5 {
			t.Fatalf("param %d = %v did not move toward 0", j, p)
		}
	}
	st := agg.Stats()
	if st.Arrivals < 100 {
		t.Fatalf("stats = %+v, want >= 100 accepted arrivals", st)
	}
}

func TestAsyncClientMaxUpdates(t *testing.T) {
	_, srv := newAsyncTestServer(t, asyncfl.Config{
		InitialParams: []float64{1},
		K:             1000, // never steps
		LR:            0.1,
		SessionTTL:    -1,
	})
	done := make(chan error, 1)
	go func() {
		_, err := RunAsyncClient(context.Background(), AsyncClientConfig{
			Addr:       srv.URL,
			ID:         "c",
			Compute:    quadCompute(0),
			MaxUpdates: 3,
		})
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("client: %v", err)
	}
}

func TestAsyncSubmitSignals(t *testing.T) {
	agg, srv := newAsyncTestServer(t, asyncfl.Config{
		InitialParams: []float64{0, 0},
		K:             100,
		QueueCap:      2,
		LR:            0.1,
		SessionTTL:    -1,
	})
	c := &AsyncClient{Base: srv.URL, ID: "c"}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, 0, 0, []float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Submit(ctx, 0, 0, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped || !res.Backpressure || !res.Accepted {
		t.Fatalf("overflow submit = %+v, want dropped+backpressure", res)
	}
	if st := agg.Stats(); st.Drops != 1 {
		t.Fatalf("stats = %+v", st)
	}
	hb, err := c.Heartbeat(ctx)
	if err != nil || hb.Version != 0 || hb.Done {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}
	stats, err := c.Stats(ctx)
	if err != nil || stats.Buffered != 2 {
		t.Fatalf("stats over HTTP = %+v, %v", stats, err)
	}
}

func TestAsyncBadRequests(t *testing.T) {
	_, srv := newAsyncTestServer(t, asyncfl.Config{
		InitialParams: []float64{0, 0},
		K:             10,
		LR:            0.1,
		SessionTTL:    -1,
	})
	post := func(path, body string) *http.Response {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(AsyncPathUpdate, `{"Client":"","Grad":[1,2]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty client: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post(AsyncPathUpdate, `{"Client":"c","Grad":[1]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dim mismatch: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post(AsyncPathUpdate, `{"Client":"c","Grad":[1,2]} trailing`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing garbage: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post(AsyncPathHeartbeat, `{"Client":""}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty heartbeat client: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestAsyncClientURLNormalization(t *testing.T) {
	c := &AsyncClient{Base: "127.0.0.1:9000"}
	if got := c.url(AsyncPathModel); got != "http://127.0.0.1:9000"+AsyncPathModel {
		t.Fatalf("url = %q", got)
	}
	c.Base = "http://example.com/"
	if got := c.url(AsyncPathModel); got != "http://example.com"+AsyncPathModel {
		t.Fatalf("url = %q", got)
	}
}
