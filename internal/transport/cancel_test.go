package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
)

// TestClientContextCancellation verifies a blocked client unblocks promptly
// when its context is cancelled mid-session (failure injection: the server
// stops mid-round and never answers again).
func TestClientContextCancellation(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 2, Rounds: 100, // expects 2, only 1 will come
		Rule: aggregate.NewMean(), InitialParams: []float64{0}, LR: 0.1,
		RoundTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	serverCtx, serverCancel := context.WithCancel(context.Background())
	defer serverCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(serverCtx) // will fail: registration never completes
	}()

	clientCtx, clientCancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(clientCtx, ClientConfig{
			Addr: srv.Addr().String(), ID: "lonely",
			Compute: func(int, []float64) ([]float64, error) { return []float64{0}, nil },
		})
		done <- err
	}()

	// Give the client time to connect and block waiting for round 0,
	// then cancel it.
	time.Sleep(200 * time.Millisecond)
	clientCancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled client returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not unblock after context cancellation")
	}
	serverCancel()
	srv.Close()
	wg.Wait()
}

// TestServerTimesOutSilentClient verifies the round timeout: a client that
// registers but never uploads a gradient fails the round instead of
// hanging the cohort forever.
func TestServerTimesOutSilentClient(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: 1, Rounds: 3,
		Rule: aggregate.NewMean(), InitialParams: []float64{0}, LR: 0.1,
		RoundTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx) }()

	// A client that registers and then stalls forever.
	clientDone := make(chan error, 1)
	go func() {
		_, err := RunClient(ctx, ClientConfig{
			Addr: srv.Addr().String(), ID: "silent",
			Compute: func(int, []float64) ([]float64, error) {
				<-ctx.Done() // never answer
				return nil, ctx.Err()
			},
		})
		clientDone <- err
	}()

	select {
	case err := <-serveDone:
		if err == nil {
			t.Error("server completed despite a silent client")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not time out the silent client")
	}
	cancel()
	<-clientDone
}
