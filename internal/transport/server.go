package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/nn"
)

// ServerConfig describes a parameter-server deployment.
type ServerConfig struct {
	// Addr is the TCP listen address (use "127.0.0.1:0" for tests).
	Addr string
	// Clients is the number of participants the server waits for; rounds
	// are fully synchronous, matching the paper's setting.
	Clients int
	// Rounds is the number of aggregation rounds to run.
	Rounds int
	// Rule is the gradient aggregation rule applied each round.
	Rule aggregate.Rule
	// InitialParams is the starting global parameter vector.
	InitialParams []float64
	// LR / Momentum / WeightDecay configure the server-side SGD update.
	LR          float64
	Momentum    float64
	WeightDecay float64
	// RoundTimeout bounds each network wait (0 = 30s default). A slow or
	// crashed client fails the round rather than hanging the cohort.
	RoundTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *ServerConfig) validate() error {
	switch {
	case c.Clients <= 0:
		return fmt.Errorf("transport: %d clients invalid", c.Clients)
	case c.Rounds <= 0:
		return fmt.Errorf("transport: %d rounds invalid", c.Rounds)
	case c.Rule == nil:
		return errors.New("transport: ServerConfig.Rule is required")
	case len(c.InitialParams) == 0:
		return errors.New("transport: ServerConfig.InitialParams is required")
	case c.LR <= 0:
		return fmt.Errorf("transport: learning rate %v invalid", c.LR)
	}
	return nil
}

// Server coordinates synchronous federated rounds over TCP.
type Server struct {
	cfg ServerConfig

	ln     net.Listener
	params []float64
	opt    *nn.SGD

	mu      sync.Mutex
	history []RoundSummary
}

// RoundSummary records one aggregation round at the server.
type RoundSummary struct {
	Round    int
	Selected []int
}

// NewServer binds the listen socket and prepares the server. Call Serve to
// run the protocol.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
	}
	params := make([]float64, len(cfg.InitialParams))
	copy(params, cfg.InitialParams)
	return &Server{
		cfg:    cfg,
		ln:     ln,
		params: params,
		opt:    nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay),
	}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the listen socket down, unblocking a Serve call waiting in
// Accept. Serve also closes the listener when it returns; Close exists for
// callers — tests above all — that must abort registration from outside
// without reaching into server internals. Closing an already-closed server
// returns the listener's error and is otherwise harmless.
func (s *Server) Close() error { return s.ln.Close() }

// FinalParams returns a copy of the current global parameters.
func (s *Server) FinalParams() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.params))
	copy(out, s.params)
	return out
}

// History returns the per-round aggregation summaries recorded so far.
func (s *Server) History() []RoundSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RoundSummary, len(s.history))
	copy(out, s.history)
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// clientConn is one registered participant.
type clientConn struct {
	id   string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Serve runs the full protocol: accept Clients participants, run Rounds
// synchronous rounds, broadcast the final model, and shut down. It returns
// once training completes or the context is cancelled.
func (s *Server) Serve(ctx context.Context) error {
	defer s.ln.Close()

	conns, err := s.acceptAll(ctx)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range conns {
			c.conn.Close()
		}
	}()
	s.logf("transport: %d clients registered, starting %d rounds", len(conns), s.cfg.Rounds)

	for round := 0; round < s.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("transport: cancelled before round %d: %w", round, err)
		}
		grads, err := s.runRound(round, conns)
		if err != nil {
			return fmt.Errorf("transport: round %d: %w", round, err)
		}
		res, err := s.cfg.Rule.Aggregate(grads)
		if err != nil {
			return fmt.Errorf("transport: round %d aggregation (%s): %w", round, s.cfg.Rule.Name(), err)
		}
		s.mu.Lock()
		err = s.opt.Step(s.params, res.Gradient)
		s.history = append(s.history, RoundSummary{Round: round, Selected: res.Selected})
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}

	// Final broadcast: the trained model.
	final := ModelUpdate{Round: s.cfg.Rounds, Params: s.FinalParams(), Done: true}
	for _, c := range conns {
		c.conn.SetWriteDeadline(time.Now().Add(s.cfg.RoundTimeout))
		if err := c.enc.Encode(&final); err != nil {
			s.logf("transport: final broadcast to %s failed: %v", c.id, err)
		}
	}
	s.logf("transport: training complete")
	return nil
}

// acceptAll waits for exactly cfg.Clients registrations. A connection that
// fails to deliver its Hello within the timeout is dropped and its slot
// stays open for the next dialer.
func (s *Server) acceptAll(ctx context.Context) ([]*clientConn, error) {
	deadline := time.Now().Add(s.cfg.RoundTimeout * 4)
	conns := make([]*clientConn, 0, s.cfg.Clients)
	for len(conns) < s.cfg.Clients {
		if err := ctx.Err(); err != nil {
			break
		}
		if tl, ok := s.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := s.ln.Accept()
		if err != nil {
			for _, c := range conns {
				c.conn.Close()
			}
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		cc := &clientConn{
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.RoundTimeout))
		var hello Hello
		if err := cc.dec.Decode(&hello); err != nil {
			conn.Close()
			s.logf("transport: registration failed: %v", err)
			continue
		}
		conn.SetReadDeadline(time.Time{})
		cc.id = hello.ClientID
		conns = append(conns, cc)
		s.logf("transport: client %q registered (%d/%d)", cc.id, len(conns), s.cfg.Clients)
	}
	if err := ctx.Err(); err != nil {
		for _, c := range conns {
			c.conn.Close()
		}
		return nil, fmt.Errorf("transport: cancelled during registration: %w", err)
	}
	return conns, nil
}

// runRound broadcasts the model and gathers one gradient per client, in
// parallel so the round latency is the slowest client, not the sum.
func (s *Server) runRound(round int, conns []*clientConn) ([][]float64, error) {
	update := ModelUpdate{Round: round, Params: s.FinalParams()}
	grads := make([][]float64, len(conns))
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *clientConn) {
			defer wg.Done()
			deadline := time.Now().Add(s.cfg.RoundTimeout)
			c.conn.SetWriteDeadline(deadline)
			if err := c.enc.Encode(&update); err != nil {
				errs[i] = fmt.Errorf("send to %s: %w", c.id, err)
				return
			}
			c.conn.SetReadDeadline(deadline)
			var up GradientUpload
			if err := c.dec.Decode(&up); err != nil {
				errs[i] = fmt.Errorf("receive from %s: %w", c.id, err)
				return
			}
			if up.Round != round {
				errs[i] = fmt.Errorf("client %s answered round %d during round %d", c.id, up.Round, round)
				return
			}
			if len(up.Grad) != len(update.Params) {
				errs[i] = fmt.Errorf("client %s sent %d-dim gradient, want %d", c.id, len(up.Grad), len(update.Params))
				return
			}
			grads[i] = up.Grad
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return grads, nil
}
