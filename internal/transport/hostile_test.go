package transport

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/asyncfl"
	"github.com/signguard/signguard/internal/codec"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/tensor"
)

// newHostileTestServer spins a real HTTP server over an aggregator defended
// by SignGuard with the KMeans sign filter — the exact defense the original
// NaN crash chain ran through (NaN features -> NaN inertia in every KMeans
// restart -> nil cluster result -> nil deref). The rule is FiniteGuard-
// wrapped exactly as the defense registry wraps it.
func newHostileTestServer(t *testing.T, dim int) (*asyncfl.Aggregator, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Algo = core.KMeansAlgo
	rule, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := asyncfl.New(asyncfl.Config{
		InitialParams: make([]float64, dim),
		K:             6,
		Alpha:         0.5,
		LR:            0.1,
		Rule:          aggregate.Guard(rule),
		SessionTTL:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAsyncHandler(agg))
	t.Cleanup(srv.Close)
	return agg, srv
}

// TestAsyncHostileNaNEndToEnd is the deterministic regression for the
// NaN-gradient crash: hostile non-finite traffic is driven through the full
// serving path (HTTP client -> handler -> aggregator -> SignGuard-KMeans
// defense) in every wire shape it can take, and the server must refuse each
// one, count it, keep aggregating honest traffic, and keep the model
// finite.
func TestAsyncHostileNaNEndToEnd(t *testing.T) {
	dim := 16
	agg, srv := newHostileTestServer(t, dim)
	ctx := context.Background()

	// Shape 1: a literal NaN token. JSON cannot represent it, so the body
	// is malformed and the handler refuses it at the parse layer.
	resp, err := http.Post(srv.URL+AsyncPathUpdate, "application/json",
		strings.NewReader(`{"Client":"evil","Grad":[NaN,1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("literal-NaN body: HTTP %d, want 400", resp.StatusCode)
	}

	// Shape 2: the representable attack — a valid-JSON qsgd payload whose
	// finite Scale amplifies to +Inf on decode. The handler must refuse it
	// and account it on the aggregator's non-finite counters.
	evil := &AsyncClient{Base: srv.URL, ID: "evil"}
	hostile := codec.Encoded{Codec: codec.QSGD, Dim: dim, Scale: 1e308, Levels: 1, Q: make([]int8, dim)}
	for i := range hostile.Q {
		hostile.Q[i] = 127
	}
	if _, err := evil.SubmitEncoded(ctx, 0, 0, hostile); err == nil {
		t.Fatal("amplifying qsgd payload was accepted")
	} else if !strings.Contains(err.Error(), "400") {
		t.Fatalf("amplifying qsgd payload: %v, want HTTP 400", err)
	}
	st, err := evil.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.NonFiniteRejects != 1 {
		t.Fatalf("NonFiniteRejects = %d after wire-level refusal, want 1", st.NonFiniteRejects)
	}

	// Shape 3: a NaN gradient reaching Submit itself (an in-process caller
	// behind the HTTP boundary). The default Reject screen withholds it.
	nan := make([]float64, dim)
	nan[3] = math.NaN()
	res, err := agg.Submit(asyncfl.Update{Client: "evil", Grad: nan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || !res.NonFinite {
		t.Fatalf("NaN submit: Accepted=%v NonFinite=%v, want refused+flagged", res.Accepted, res.NonFinite)
	}

	// Honest traffic interleaved with more hostile payloads: aggregation
	// must proceed on the honest updates through the SignGuard-KMeans
	// defense as if the attack were not happening.
	clients := []*AsyncClient{
		{Base: srv.URL, ID: "h0"},
		{Base: srv.URL, ID: "h1"},
		{Base: srv.URL, ID: "h2"},
	}
	for round := 0; round < 4; round++ {
		evil.SubmitEncoded(ctx, 0, 0, hostile) // refused every time
		for ci, c := range clients {
			model, err := c.Model(ctx)
			if err != nil {
				t.Fatal(err)
			}
			grad := make([]float64, dim)
			for j := range grad {
				grad[j] = 0.05*float64(j%5+1) + 0.002*float64(ci)
			}
			if _, err := c.Submit(ctx, model.Version, 0, grad); err != nil {
				t.Fatal(err)
			}
		}
	}

	st, err = evil.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps == 0 {
		t.Fatalf("no aggregation steps despite 12 honest arrivals: %+v", st)
	}
	if st.NonFiniteRejects < 5 {
		t.Errorf("NonFiniteRejects = %d, want >= 5 (one per hostile payload)", st.NonFiniteRejects)
	}
	model, err := clients[0].Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllFinite(model.Params) {
		t.Fatalf("model went non-finite under hostile traffic: %v", model.Params)
	}
	if tensor.Norm(model.Params) == 0 {
		t.Error("model never moved: honest traffic did not aggregate")
	}
}
