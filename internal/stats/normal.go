package stats

import "math"

// NormalCDF returns Φ(z), the standard normal cumulative distribution
// function, computed from the error function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), via bisection on the CDF.
// Accuracy is ~1e-12, far tighter than the attack calibration requires.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN()
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// LIEZMax computes the attack factor z_max for the "Little is Enough"
// attack (Eq. 2 of the paper):
//
//	z_max = max { z : Φ(z) < (n − ⌊n/2 + 1⌋) / (n − m) }
//
// where n is the total number of clients and m the number of Byzantine
// clients. The supremum of the set is the quantile itself, so we return
// Φ⁻¹(s) for s = (n − ⌊n/2+1⌋)/(n−m). When the ratio is degenerate
// (≤ 0 or ≥ 1) a NaN-free fallback of 0 is returned: the attack then
// reduces to sending the coordinate-wise mean.
func LIEZMax(n, m int) float64 {
	if n <= m || n <= 0 {
		return 0
	}
	s := (float64(n) - math.Floor(float64(n)/2+1)) / float64(n-m)
	if s <= 0 || s >= 1 {
		return 0
	}
	return NormalQuantile(s)
}
