package stats_test

import (
	"fmt"

	"github.com/signguard/signguard/internal/stats"
)

// ExampleLIEZMax reproduces the attack-factor calibration of Eq. 2 for the
// paper's default setting: 50 clients, 10 of them Byzantine.
func ExampleLIEZMax() {
	z := stats.LIEZMax(50, 10)
	fmt.Printf("z_max = %.3f\n", z)
	// Output: z_max = 0.253
}

// ExampleComputeSignStats shows the feature SignGuard clusters on: the
// proportions of positive, zero and negative gradient entries.
func ExampleComputeSignStats() {
	ss, _ := stats.ComputeSignStats([]float64{0.3, -1.2, 0, 2.5, -0.1, 0.9, 0, -4})
	fmt.Println(ss)
	// Output: SignStats{pos=0.3750 zero=0.2500 neg=0.3750}
}
