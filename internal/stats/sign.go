package stats

import (
	"fmt"
	"math/rand"
)

// SignStats holds the proportions of positive, zero and negative elements of
// a gradient vector — the "sign statistics" that the paper shows expose
// model-poisoning attacks which are invisible to distance- and
// similarity-based defenses (Section III, Fig. 2).
//
// The three fields always sum to 1 for a non-empty input.
type SignStats struct {
	Pos  float64 // fraction of strictly positive elements
	Zero float64 // fraction of exactly-zero elements
	Neg  float64 // fraction of strictly negative elements
}

// Vector returns the statistics as a feature row [pos, zero, neg], the form
// consumed by the clustering filter.
func (s SignStats) Vector() []float64 {
	return []float64{s.Pos, s.Zero, s.Neg}
}

func (s SignStats) String() string {
	return fmt.Sprintf("SignStats{pos=%.4f zero=%.4f neg=%.4f}", s.Pos, s.Zero, s.Neg)
}

// ComputeSignStats returns the sign statistics of v over all coordinates.
func ComputeSignStats(v []float64) (SignStats, error) {
	if len(v) == 0 {
		return SignStats{}, ErrEmptyInput
	}
	var pos, neg, zero int
	for _, x := range v {
		switch {
		case x > 0:
			pos++
		case x < 0:
			neg++
		default:
			zero++
		}
	}
	n := float64(len(v))
	return SignStats{
		Pos:  float64(pos) / n,
		Zero: float64(zero) / n,
		Neg:  float64(neg) / n,
	}, nil
}

// ComputeSignStatsAt returns the sign statistics of v restricted to the
// given coordinate subset. SignGuard evaluates sign statistics on a random
// 10% coordinate sample to capture local structure cheaply (Algorithm 2,
// step 2).
func ComputeSignStatsAt(v []float64, idx []int) (SignStats, error) {
	if len(idx) == 0 {
		return SignStats{}, ErrEmptyInput
	}
	var pos, neg, zero int
	for _, j := range idx {
		if j < 0 || j >= len(v) {
			return SignStats{}, fmt.Errorf("stats: sign-stat index %d out of range [0,%d)", j, len(v))
		}
		switch x := v[j]; {
		case x > 0:
			pos++
		case x < 0:
			neg++
		default:
			zero++
		}
	}
	n := float64(len(idx))
	return SignStats{
		Pos:  float64(pos) / n,
		Zero: float64(zero) / n,
		Neg:  float64(neg) / n,
	}, nil
}

// SampleCoordinates draws a random subset of coordinate indices covering
// the given fraction of a d-dimensional vector (at least one coordinate).
// The same subset must be applied to every client's gradient within a round
// so that the resulting features are comparable.
func SampleCoordinates(rng *rand.Rand, d int, fraction float64) ([]int, error) {
	if d <= 0 {
		return nil, fmt.Errorf("stats: cannot sample coordinates of a %d-dim vector", d)
	}
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("stats: coordinate fraction %v out of (0,1]", fraction)
	}
	k := int(float64(d) * fraction)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(d)
	idx := make([]int, k)
	copy(idx, perm[:k])
	return idx, nil
}
