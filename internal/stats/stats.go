// Package stats implements the statistical primitives used by SignGuard and
// the baseline robust aggregation rules: order statistics (median, trimmed
// mean, quantiles), coordinate-wise robust estimators over sets of gradient
// vectors, cosine similarity, the element-wise sign statistics that are the
// heart of the SignGuard filter, and the standard-normal distribution
// functions needed to calibrate the "Little is Enough" attack.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/signguard/signguard/internal/parallel"
	"github.com/signguard/signguard/internal/tensor"
)

// ErrEmptyInput is returned when a statistic is requested over no samples.
var ErrEmptyInput = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// matching the estimator used by the attacks in the paper.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs without modifying the input. For an even
// number of samples it returns the midpoint of the two central values.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2], nil
	}
	return 0.5 * (tmp[n/2-1] + tmp[n/2]), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo], nil
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac, nil
}

// TrimmedMean returns the mean of xs after removing the k smallest and the
// k largest values. It requires len(xs) > 2k.
func TrimmedMean(xs []float64, k int) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	if k < 0 {
		return 0, fmt.Errorf("stats: negative trim count %d", k)
	}
	if len(xs) <= 2*k {
		return 0, fmt.Errorf("stats: cannot trim %d from each side of %d samples", k, len(xs))
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	tmp = tmp[k : len(tmp)-k]
	return Mean(tmp)
}

// CosineSimilarity returns cos(a, b) = <a,b>/(||a||·||b||). If either vector
// is zero the similarity is defined as 0.
func CosineSimilarity(a, b []float64) (float64, error) {
	dot, err := tensor.Dot(a, b)
	if err != nil {
		return 0, err
	}
	na, nb := tensor.Norm(a), tensor.Norm(b)
	if na == 0 || nb == 0 {
		return 0, nil
	}
	c := dot / (na * nb)
	// Guard against floating-point drift outside [-1, 1].
	return math.Max(-1, math.Min(1, c)), nil
}

// CoordinateMedian returns the coordinate-wise median of the given vectors.
func CoordinateMedian(vs [][]float64) ([]float64, error) {
	return CoordinateMedianWorkers(vs, 1)
}

// CoordinateMedianWorkers is CoordinateMedian with the coordinates split
// across workers. Every coordinate is processed identically to the
// sequential path, so the result is byte-identical for any worker count.
func CoordinateMedianWorkers(vs [][]float64, workers int) ([]float64, error) {
	if err := validateRows(vs, "CoordinateMedian"); err != nil {
		return nil, err
	}
	d := len(vs[0])
	out := make([]float64, d)
	parallel.For(workers, d, func(_, start, end int) {
		col := make([]float64, len(vs))
		for j := start; j < end; j++ {
			for i, v := range vs {
				col[i] = v[j]
			}
			m, err := Median(col)
			if err != nil { // unreachable: len(col) == len(vs) > 0
				panic(err)
			}
			out[j] = m
		}
	})
	return out, nil
}

// CoordinateTrimmedMean returns the coordinate-wise k-trimmed mean of the
// given vectors (Yin et al., ICML 2018).
func CoordinateTrimmedMean(vs [][]float64, k int) ([]float64, error) {
	return CoordinateTrimmedMeanWorkers(vs, k, 1)
}

// CoordinateTrimmedMeanWorkers is CoordinateTrimmedMean with the
// coordinates split across workers (see CoordinateMedianWorkers).
func CoordinateTrimmedMeanWorkers(vs [][]float64, k int, workers int) ([]float64, error) {
	if err := validateRows(vs, "CoordinateTrimmedMean"); err != nil {
		return nil, err
	}
	if k < 0 || len(vs) <= 2*k {
		return nil, fmt.Errorf("stats: cannot trim %d from each side of %d vectors", k, len(vs))
	}
	d := len(vs[0])
	out := make([]float64, d)
	parallel.For(workers, d, func(_, start, end int) {
		col := make([]float64, len(vs))
		for j := start; j < end; j++ {
			for i, v := range vs {
				col[i] = v[j]
			}
			m, err := TrimmedMean(col, k)
			if err != nil { // unreachable: trim bound checked above
				panic(err)
			}
			out[j] = m
		}
	})
	return out, nil
}

// validateRows checks that vs is a non-empty set of equal-length vectors,
// so the per-coordinate kernels cannot fail mid-parallel-loop.
func validateRows(vs [][]float64, op string) error {
	if len(vs) == 0 {
		return ErrEmptyInput
	}
	d := len(vs[0])
	for i, v := range vs {
		if len(v) != d {
			return fmt.Errorf("stats: %s row %d has %d dims, want %d", op, i, len(v), d)
		}
	}
	return nil
}

// CoordinateMeanStd returns the coordinate-wise mean and population standard
// deviation across the given vectors. These are exactly the µ_j and σ_j
// statistics an omniscient LIE attacker estimates (Eq. 1 of the paper).
func CoordinateMeanStd(vs [][]float64) (mean, std []float64, err error) {
	if len(vs) == 0 {
		return nil, nil, ErrEmptyInput
	}
	d := len(vs[0])
	mean = make([]float64, d)
	std = make([]float64, d)
	for _, v := range vs {
		if len(v) != d {
			return nil, nil, fmt.Errorf("stats: CoordinateMeanStd row has %d dims, want %d", len(v), d)
		}
		for j, x := range v {
			mean[j] += x
		}
	}
	inv := 1.0 / float64(len(vs))
	for j := range mean {
		mean[j] *= inv
	}
	for _, v := range vs {
		for j, x := range v {
			dlt := x - mean[j]
			std[j] += dlt * dlt
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] * inv)
	}
	return mean, std, nil
}

// PairwiseDistances returns the symmetric matrix D where D[i][j] = ||v_i - v_j||.
func PairwiseDistances(vs [][]float64) ([][]float64, error) {
	return PairwiseDistancesWorkers(vs, 1)
}

// PairwiseDistancesWorkers is PairwiseDistances with the rows of the
// triangular (j > i) loop strided across workers — row i costs n-i-1
// distance computations, so striding balances the load where contiguous
// chunks would not. Every matrix entry is written by exactly one worker
// and each distance is one sequential pass, so the result is
// byte-identical for any worker count.
func PairwiseDistancesWorkers(vs [][]float64, workers int) ([][]float64, error) {
	n := len(vs)
	if n > 0 {
		d := len(vs[0])
		for i, v := range vs {
			if len(v) != d {
				return nil, fmt.Errorf("stats: PairwiseDistances row %d has %d dims, want %d", i, len(v), d)
			}
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	parallel.ForStrided(workers, n, func(_, i int) {
		for j := i + 1; j < n; j++ {
			d, err := tensor.Distance(vs[i], vs[j])
			if err != nil { // unreachable: dims validated above
				panic(err)
			}
			out[i][j] = d
			out[j][i] = d
		}
	})
	return out, nil
}
