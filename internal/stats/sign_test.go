package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/signguard/signguard/internal/tensor"
)

func TestComputeSignStats(t *testing.T) {
	ss, err := ComputeSignStats([]float64{1, -1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Pos != 0.5 || ss.Neg != 0.25 || ss.Zero != 0.25 {
		t.Errorf("SignStats = %+v", ss)
	}
	if _, err := ComputeSignStats(nil); err == nil {
		t.Error("accepted empty vector")
	}
	v := ss.Vector()
	if len(v) != 3 || v[0] != 0.5 {
		t.Errorf("Vector = %v", v)
	}
	if ss.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestComputeSignStatsAt(t *testing.T) {
	v := []float64{1, -1, 0, 2, -3}
	ss, err := ComputeSignStatsAt(v, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Pos != 0.5 || ss.Neg != 0.5 || ss.Zero != 0 {
		t.Errorf("subset stats = %+v", ss)
	}
	if _, err := ComputeSignStatsAt(v, []int{99}); err == nil {
		t.Error("accepted out-of-range index")
	}
	if _, err := ComputeSignStatsAt(v, nil); err == nil {
		t.Error("accepted empty index set")
	}
}

func TestSampleCoordinates(t *testing.T) {
	rng := tensor.NewRNG(1)
	idx, err := SampleCoordinates(rng, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 10 {
		t.Errorf("got %d coordinates, want 10", len(idx))
	}
	seen := map[int]bool{}
	for _, j := range idx {
		if j < 0 || j >= 100 {
			t.Errorf("index %d out of range", j)
		}
		if seen[j] {
			t.Errorf("duplicate index %d", j)
		}
		seen[j] = true
	}
	// Tiny fraction still samples at least one coordinate.
	idx, err = SampleCoordinates(rng, 5, 0.01)
	if err != nil || len(idx) != 1 {
		t.Errorf("minimum sample = %v, %v", idx, err)
	}
	if _, err := SampleCoordinates(rng, 0, 0.1); err == nil {
		t.Error("accepted d=0")
	}
	if _, err := SampleCoordinates(rng, 10, 0); err == nil {
		t.Error("accepted fraction 0")
	}
	if _, err := SampleCoordinates(rng, 10, 1.5); err == nil {
		t.Error("accepted fraction > 1")
	}
}

// Property: sign statistics form a probability vector.
func TestSignStatsSimplexQuick(t *testing.T) {
	f := func(raw [16]float64) bool {
		ss, err := ComputeSignStats(raw[:])
		if err != nil {
			return false
		}
		sum := ss.Pos + ss.Zero + ss.Neg
		inRange := func(x float64) bool { return x >= 0 && x <= 1 }
		return math.Abs(sum-1) < 1e-12 && inRange(ss.Pos) && inRange(ss.Zero) && inRange(ss.Neg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFQuantile(t *testing.T) {
	for _, tc := range []struct{ z, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.95},
		{-1.6448536269514722, 0.05},
	} {
		if got := NormalCDF(tc.z); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("NormalCDF(%v) = %v, want %v", tc.z, got, tc.want)
		}
	}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		z := NormalQuantile(p)
		if back := NormalCDF(z); math.Abs(back-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Error("NormalQuantile should be NaN at the boundary")
	}
}

func TestLIEZMax(t *testing.T) {
	// n=50, m=10: s = (50-26)/40 = 0.6 → z ≈ Φ⁻¹(0.6) ≈ 0.2533.
	z := LIEZMax(50, 10)
	if math.Abs(z-0.2533) > 1e-3 {
		t.Errorf("LIEZMax(50,10) = %v, want ≈0.2533", z)
	}
	if LIEZMax(10, 10) != 0 {
		t.Error("degenerate n<=m should return 0")
	}
	if LIEZMax(0, 0) != 0 {
		t.Error("n=0 should return 0")
	}
}

// Property: z_max grows with the Byzantine fraction (more corrupted
// workers let the attacker push farther while staying hidden).
func TestLIEZMaxMonotoneQuick(t *testing.T) {
	f := func(mRaw uint8) bool {
		n := 60
		m := int(mRaw) % 25 // up to ~40%
		if m < 1 {
			return true
		}
		z1 := LIEZMax(n, m)
		z2 := LIEZMax(n, m+1)
		return z2 >= z1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
