package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/signguard/signguard/internal/tensor"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || v != 4 {
		t.Errorf("Variance = %v, %v", v, err)
	}
	s, err := StdDev(xs)
	if err != nil || s != 2 {
		t.Errorf("StdDev = %v, %v", s, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean accepted empty input")
	}
}

func TestMedian(t *testing.T) {
	odd := []float64{5, 1, 3}
	m, err := Median(odd)
	if err != nil || m != 3 {
		t.Errorf("Median(odd) = %v, %v", m, err)
	}
	even := []float64{4, 1, 3, 2}
	m, err = Median(even)
	if err != nil || m != 2.5 {
		t.Errorf("Median(even) = %v, %v", m, err)
	}
	// Input must not be mutated.
	if odd[0] != 5 {
		t.Error("Median mutated its input")
	}
	if _, err := Median(nil); err == nil {
		t.Error("Median accepted empty input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 10}
	for _, tc := range []struct{ q, want float64 }{{0, 0}, {1, 10}, {0.5, 5}, {0.25, 2.5}} {
		got, err := Quantile(xs, tc.q)
		if err != nil || math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, %v; want %v", tc.q, got, err, tc.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile accepted q < 0")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile accepted empty input")
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{100, 1, 2, 3, -50}
	got, err := TrimmedMean(xs, 1)
	if err != nil || got != 2 {
		t.Errorf("TrimmedMean = %v, %v", got, err)
	}
	if _, err := TrimmedMean(xs, 3); err == nil {
		t.Error("TrimmedMean accepted k too large")
	}
	if _, err := TrimmedMean(xs, -1); err == nil {
		t.Error("TrimmedMean accepted negative k")
	}
}

func TestCosineSimilarity(t *testing.T) {
	c, err := CosineSimilarity([]float64{1, 0}, []float64{2, 0})
	if err != nil || math.Abs(c-1) > 1e-12 {
		t.Errorf("parallel = %v, %v", c, err)
	}
	c, _ = CosineSimilarity([]float64{1, 0}, []float64{0, 3})
	if math.Abs(c) > 1e-12 {
		t.Errorf("orthogonal = %v", c)
	}
	c, _ = CosineSimilarity([]float64{1, 1}, []float64{-1, -1})
	if math.Abs(c+1) > 1e-12 {
		t.Errorf("antiparallel = %v", c)
	}
	c, _ = CosineSimilarity([]float64{0, 0}, []float64{1, 1})
	if c != 0 {
		t.Errorf("zero vector = %v, want 0", c)
	}
}

func TestCoordinateMedianAndTrimmedMean(t *testing.T) {
	vs := [][]float64{{1, 100}, {2, -100}, {3, 0}}
	med, err := CoordinateMedian(vs)
	if err != nil || !tensor.Equal(med, []float64{2, 0}, 1e-12) {
		t.Errorf("CoordinateMedian = %v, %v", med, err)
	}
	tm, err := CoordinateTrimmedMean(vs, 1)
	if err != nil || !tensor.Equal(tm, []float64{2, 0}, 1e-12) {
		t.Errorf("CoordinateTrimmedMean = %v, %v", tm, err)
	}
	if _, err := CoordinateMedian([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("CoordinateMedian accepted ragged input")
	}
}

func TestCoordinateMeanStd(t *testing.T) {
	vs := [][]float64{{0, 2}, {4, 2}}
	mean, std, err := CoordinateMeanStd(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(mean, []float64{2, 2}, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	if !tensor.Equal(std, []float64{2, 0}, 1e-12) {
		t.Errorf("std = %v", std)
	}
}

func TestPairwiseDistances(t *testing.T) {
	vs := [][]float64{{0, 0}, {3, 4}}
	d, err := PairwiseDistances(vs)
	if err != nil {
		t.Fatal(err)
	}
	if d[0][1] != 5 || d[1][0] != 5 || d[0][0] != 0 {
		t.Errorf("PairwiseDistances = %v", d)
	}
}

// Property: the median is permutation invariant and within [min, max].
func TestMedianQuick(t *testing.T) {
	f := func(raw [9]float64) bool {
		xs := raw[:]
		m1, err := Median(xs)
		if err != nil {
			return false
		}
		shuffled := append([]float64(nil), xs...)
		sort.Float64s(shuffled) // sorting is one particular permutation
		m2, _ := Median(shuffled)
		if math.IsNaN(m1) || math.IsNaN(m2) {
			return true // NaN inputs are out of scope
		}
		if m1 != m2 {
			return false
		}
		lo, hi := tensor.MinMax(xs)
		return m1 >= lo && m1 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: trimmed mean lies within [min, max] of the untrimmed sample.
func TestTrimmedMeanQuick(t *testing.T) {
	f := func(raw [11]float64, k uint8) bool {
		xs := raw[:]
		for i, x := range xs {
			if math.IsNaN(x) {
				return true
			}
			xs[i] = math.Mod(x, 1e6) // avoid float64 overflow in the sum
		}
		kk := int(k) % 5
		m, err := TrimmedMean(xs, kk)
		if err != nil {
			return false
		}
		lo, hi := tensor.MinMax(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cosine similarity is always within [-1, 1].
func TestCosineBoundsQuick(t *testing.T) {
	f := func(a, b [6]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				return true
			}
			a[i] = math.Mod(a[i], 1e6) // avoid float64 overflow in the dot
			b[i] = math.Mod(b[i], 1e6)
		}
		c, err := CosineSimilarity(a[:], b[:])
		if err != nil {
			return false
		}
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
