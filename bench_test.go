// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus micro-benchmarks of the aggregation rules and
// attacks themselves.
//
// The per-experiment benchmarks run a miniature version of each sweep (10
// clients, 20 rounds, small data) so that `go test -bench=.` terminates in
// minutes; run them with -v to see the regenerated rows. The full-size
// regeneration lives in cmd/reproduce:
//
//	go run ./cmd/reproduce -exp table1 -scale standard
package signguard_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/signguard/signguard/internal/aggregate"
	"github.com/signguard/signguard/internal/attack"
	"github.com/signguard/signguard/internal/campaign"
	"github.com/signguard/signguard/internal/core"
	"github.com/signguard/signguard/internal/experiments"
	"github.com/signguard/signguard/internal/tensor"
)

// microParams is an extra-small preset so each experiment benchmark
// iteration stays in the seconds range.
func microParams() experiments.Params {
	return experiments.Params{
		Clients: 10, ByzFraction: 0.2, Rounds: 20, BatchSize: 8,
		EvalEvery: 5, EvalSamples: 150, TrainSize: 600, TestSize: 200, Seed: 1,
	}
}

// benchEngine is a cache-less parallel campaign engine for the experiment
// benchmarks.
func benchEngine() *campaign.Engine {
	return experiments.NewEngine(0, nil, nil)
}

// logTable renders a table into the benchmark log (visible with -v).
func logTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	var sb strings.Builder
	if err := t.Markdown(&sb); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
}

// BenchmarkTable1 regenerates Table I (defense × attack best accuracy) for
// each dataset analog at micro scale.
func BenchmarkTable1(b *testing.B) {
	for _, key := range []string{"mnist", "fashion", "cifar", "agnews"} {
		b.Run(key, func(b *testing.B) {
			ds, err := experiments.DatasetByKey(key)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				t, err := experiments.Table1(benchEngine(), ds, microParams())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					logTable(b, t)
				}
			}
		})
	}
}

// BenchmarkTable2SelectionRates regenerates Table II (honest/malicious
// selection rates of the SignGuard variants).
func BenchmarkTable2SelectionRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2(benchEngine(), microParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkTable3Ablation regenerates Table III (component ablation).
func BenchmarkTable3Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3(benchEngine(), microParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, t)
		}
	}
}

// BenchmarkFig2SignStatistics regenerates Fig. 2 (sign statistics of the
// honest vs LIE-crafted gradients over training).
func BenchmarkFig2SignStatistics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tables, err := experiments.Fig2(benchEngine(), microParams(), 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				logTable(b, t)
			}
		}
	}
}

// BenchmarkFig4ByzantineFraction regenerates Fig. 4 (attack impact vs
// Byzantine fraction).
func BenchmarkFig4ByzantineFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig4(benchEngine(), microParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				logTable(b, t)
			}
		}
	}
}

// BenchmarkFig5TimeVarying regenerates Fig. 5 (accuracy curves under the
// time-varying attack).
func BenchmarkFig5TimeVarying(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig5(benchEngine(), microParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				logTable(b, t)
			}
		}
	}
}

// BenchmarkFig6NonIID regenerates Fig. 6 (non-IID skew sweep).
func BenchmarkFig6NonIID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig6(benchEngine(), microParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				logTable(b, t)
			}
		}
	}
}

// ---- Micro-benchmarks: per-round cost of each aggregation rule ----

// benchGrads builds one round's worth of gradients: n clients, d params.
func benchGrads(n, d int) [][]float64 {
	rng := tensor.NewRNG(7)
	out := make([][]float64, n)
	for i := range out {
		out[i] = tensor.RandNormal(rng, d, 0.01, 1)
	}
	return out
}

// BenchmarkRules measures the per-round aggregation cost of every defense
// at the paper's scale (n=50 clients) on a 10k-parameter model.
func BenchmarkRules(b *testing.B) {
	const (
		n = 50
		f = 10
		d = 10000
	)
	grads := benchGrads(n, d)
	rules := []aggregate.Rule{
		aggregate.NewMean(),
		aggregate.NewTrimmedMean(f),
		aggregate.NewMedian(),
		aggregate.NewGeoMed(),
		aggregate.NewMultiKrum(f, n-f),
		aggregate.NewBulyan(f),
		aggregate.NewDnC(f, 1),
		aggregate.NewSignSGDMajority(1),
		core.NewPlain(1),
		core.NewSim(1),
		core.NewDist(1),
	}
	for _, r := range rules {
		b.Run(r.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttacks measures the per-round crafting cost of every attack.
func BenchmarkAttacks(b *testing.B) {
	const (
		nBenign = 40
		nByz    = 10
		d       = 10000
	)
	all := benchGrads(nBenign+nByz, d)
	ctx := &attack.Context{
		Benign: all[:nBenign],
		ByzOwn: all[nBenign:],
		Rng:    tensor.NewRNG(3),
	}
	attacks := []attack.Attack{
		attack.NewRandom(),
		attack.NewNoise(),
		attack.NewSignFlip(),
		attack.NewLIE(0.3),
		attack.NewByzMean(),
		attack.NewMinMax(),
		attack.NewMinSum(),
	}
	for _, a := range attacks {
		b.Run(a.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.Craft(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablation benchmarks for the design choices called out in DESIGN.md ----

// BenchmarkAblationClustering compares Mean-Shift against 2-means as the
// sign filter's clustering model.
func BenchmarkAblationClustering(b *testing.B) {
	grads := benchGrads(50, 5000)
	for _, algo := range []core.ClusterAlgo{core.MeanShiftAlgo, core.KMeansAlgo} {
		b.Run(fmt.Sprint(algo), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Algo = algo
			sg, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sg.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCoordinateFraction sweeps the random coordinate
// fraction of the sign filter (paper default 10%).
func BenchmarkAblationCoordinateFraction(b *testing.B) {
	grads := benchGrads(50, 20000)
	for _, frac := range []float64{0.01, 0.1, 0.5, 1.0} {
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.CoordFraction = frac
			sg, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sg.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFeatures compares the plain, -Sim and -Dist variants'
// per-round cost (the similarity features add an O(n·d) pass).
func BenchmarkAblationFeatures(b *testing.B) {
	grads := benchGrads(50, 20000)
	variants := map[string]*core.SignGuard{
		"plain": core.NewPlain(1),
		"sim":   core.NewSim(1),
		"dist":  core.NewDist(1),
	}
	for name, sg := range variants {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sg.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
