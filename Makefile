# The targets below are the exact commands CI runs (.github/workflows/ci.yml)
# so local verification and the quality gate can never drift apart.

GO ?= go
# Extra flags for the bench target (CI passes BENCHFLAGS=-json to produce
# the BENCH_PR.json artifact).
BENCHFLAGS ?=

.PHONY: all build test race bench cover fmt-check vet dist

all: fmt-check build test

build:
	$(GO) build ./...

# vet is part of the test gate: `make test` locally runs exactly what the
# CI test job enforces.
test: vet
	$(GO) test -short -timeout 10m ./...

race:
	$(GO) test -race -short -timeout 15m ./...

# Compile and execute every benchmark exactly once: fast enough for a PR
# gate, and it fails loudly when benchmark code rots. Silenced (@) because
# CI pipes the output into BENCH_PR.json, where make's recipe echo would
# corrupt the `go test -json` stream.
bench:
	@$(GO) test $(BENCHFLAGS) -run '^$$' -bench . -benchtime 1x -timeout 15m ./...

# Coverage profile + per-package summary. The per-package lines come from
# `go test -cover` itself; the closing line is the aggregate across every
# package. CI uploads coverage.out as an artifact.
cover:
	$(GO) test -short -timeout 10m -covermode=atomic -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Work-stealing cell scheduler (queue + HTTP coordinator/worker): the
# failure-injection suite — lease expiry, duplicate uploads, coordinator
# restarts — must stay clean under the race detector. -count=3 repeats the
# suite to shake out schedule-dependent flakes a single pass (the race
# target already runs one) would miss; this is the CI dist job.
dist:
	$(GO) test -race -count 3 -timeout 10m ./internal/campaign/...
