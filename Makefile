# The targets below are the exact commands CI runs (.github/workflows/ci.yml)
# so local verification and the quality gate can never drift apart.

GO ?= go
# Extra flags for the bench target (CI passes BENCHFLAGS=-json to produce
# the BENCH_PR.json artifact).
BENCHFLAGS ?=

.PHONY: all build test conformance race bench bench-gate bench-baseline profile profile-top cover fmt-check doc-check vet dist fuzz

# Fuzz budget per target for `make fuzz` (CI passes FUZZTIME=10s; raise it
# locally for deeper runs, e.g. make fuzz FUZZTIME=2m).
FUZZTIME ?= 10s

all: fmt-check doc-check build test

build:
	$(GO) build ./...

# vet is part of the test gate: `make test` locally runs exactly what the
# CI test job enforces.
test: vet
	$(GO) test -short -timeout 10m ./...

race:
	$(GO) test -race -short -timeout 15m ./...

# Registry-wide conformance suite (internal/conformance): every registered
# defense and codec must hold its contract — byte-identical aggregation for
# any worker count, finite-or-error behavior on hostile inputs, declared
# hyperparameters and codec round-trip bounds. Run under the race detector
# with -count=2 so a stateful rule that only misbehaves on reuse (or only
# races under parallel kernels) still fails; the CI test job runs this.
conformance:
	$(GO) test -race -count=2 -timeout 10m -run 'Conformance' ./internal/defense ./internal/codec ./internal/experiments

# Compile and execute every benchmark exactly once: fast enough for a PR
# gate, and it fails loudly when benchmark code rots. -benchmem adds B/op
# and allocs/op columns, which the gate compares alongside ns/op. Silenced
# (@) because CI pipes the output into BENCH_PR.json, where make's recipe
# echo would corrupt the `go test -json` stream.
bench:
	@$(GO) test $(BENCHFLAGS) -run '^$$' -bench . -benchtime 1x -benchmem -timeout 15m ./...

# Benchmark regression gate: run the bench sweep as a -json stream and
# compare every benchmark's ns/op, B/op and allocs/op against the committed
# BENCH_BASELINE.json (cmd/benchgate), failing on >15% regressions on any
# metric — the CI bench job runs this, so a landed performance win stays
# won. The baseline is machine-class dependent: refresh it with
# `make bench-baseline` after an intentional perf change or a CI runner
# change.
bench-gate:
	@$(GO) test -json -run '^$$' -bench . -benchtime 1x -benchmem -timeout 15m ./... > BENCH_PR.json
	$(GO) run ./cmd/benchgate -input BENCH_PR.json -baseline BENCH_BASELINE.json -threshold 0.15

bench-baseline:
	@$(GO) test -json -run '^$$' -bench . -benchtime 1x -benchmem -timeout 15m ./... > BENCH_PR.json
	$(GO) run ./cmd/benchgate -input BENCH_PR.json -write -baseline BENCH_BASELINE.json

# CPU/heap profiles of the two serving-critical benchmarks: the
# LocalCompute engines (per-client vs batched) and the async load harness.
# Written to ./profiles; inspect with `go tool pprof profiles/<name>`.
profile:
	@mkdir -p profiles
	$(GO) test -run '^$$' -bench BenchmarkLocalCompute -benchtime 3x -timeout 15m -o profiles/fl.test \
		-cpuprofile profiles/localcompute.cpu.pprof -memprofile profiles/localcompute.mem.pprof ./internal/fl
	$(GO) test -run '^$$' -bench BenchmarkAsyncLoad -benchtime 3x -timeout 15m -o profiles/loadtest.test \
		-cpuprofile profiles/asyncload.cpu.pprof -memprofile profiles/asyncload.mem.pprof ./internal/asyncfl/loadtest
	@echo "profiles written to ./profiles — e.g. go tool pprof -top profiles/localcompute.cpu.pprof"

# Summarize saved profiles: the top-10 CPU nodes of every *.cpu.pprof and
# the top-10 allocation-volume (alloc_space) nodes of every *.mem.pprof in
# ./profiles. Run `make profile` first to (re)generate them.
profile-top:
	@ls profiles/*.pprof >/dev/null 2>&1 || { echo "no profiles found — run 'make profile' first"; exit 1; }
	@for p in profiles/*.cpu.pprof; do \
		[ -e "$$p" ] || continue; \
		echo "== $$p (cpu) =="; \
		$(GO) tool pprof -top -nodecount=10 "$$p" | tail -n +3; echo; \
	done
	@for p in profiles/*.mem.pprof; do \
		[ -e "$$p" ] || continue; \
		echo "== $$p (alloc_space) =="; \
		$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space "$$p" | tail -n +3; echo; \
	done

# Coverage profile + per-package summary. The per-package lines come from
# `go test -cover` itself; the closing line is the aggregate across every
# package. CI uploads coverage.out as an artifact.
cover:
	$(GO) test -short -timeout 10m -covermode=atomic -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Every library package must open with a "// Package <name> ..." doc
# comment (cmd binaries: "// Command <name> ..."), so `go doc` renders a
# useful summary for each. The grep keeps new packages honest; CI runs it
# in the test job next to fmt-check.
doc-check:
	@fail=0; \
	for dir in . $$(find internal -type d) $$(find cmd -mindepth 1 -maxdepth 1 -type d); do \
		ls $$dir/*.go >/dev/null 2>&1 || continue; \
		name=$$(basename $$dir); [ "$$dir" = "." ] && name=signguard; \
		case $$dir in cmd/*) pat="^// Command $$name ";; *) pat="^// Package $$name ";; esac; \
		grep -qs "$$pat" $$dir/*.go || { echo "missing package doc comment ($$pat) in $$dir"; fail=1; }; \
	done; \
	exit $$fail

vet:
	$(GO) vet ./...

# Work-stealing cell scheduler (queue + HTTP coordinator/worker): the
# failure-injection suite — lease expiry, duplicate uploads, coordinator
# restarts — must stay clean under the race detector. -count=3 repeats the
# suite to shake out schedule-dependent flakes a single pass (the race
# target already runs one) would miss; this is the CI dist job.
dist:
	$(GO) test -race -count 3 -timeout 10m ./internal/campaign/...

# Short-fuzz sweep over every fuzz target (go's fuzzer takes exactly one
# -fuzz pattern per invocation, hence one line per target). Each run replays
# the checked-in corpus first, so regressions caught by fuzzing stay caught;
# the CI fuzz job runs this with the default 10s budget per target.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -run '^$$' -fuzz '^FuzzDefenseAggregate$$' -fuzztime $(FUZZTIME) ./internal/defense
	$(GO) test -run '^$$' -fuzz '^FuzzKMeansCluster$$' -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -run '^$$' -fuzz '^FuzzMeanShiftCluster$$' -fuzztime $(FUZZTIME) ./internal/cluster
