module github.com/signguard/signguard

go 1.24
